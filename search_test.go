package plsh

import (
	"context"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"plsh/internal/core"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/sparse"
	"plsh/internal/transport"
)

// oracleMatches is the exhaustive-scan reference for the unified Search
// surface: every document within radius, as Matches in canonical
// ascending (distance, global ID) order, bounded to k when k > 0. ids
// maps document position to its global ID (identity for a Store).
func oracleMatches(docs []Vector, ids []uint64, q Vector, radius float64, k int) []Match {
	thr := sparse.CosThreshold(radius)
	var in []Match
	for i, d := range docs {
		if dot := sparse.Dot(q, d); dot >= thr {
			in = append(in, Match{ID: ids[i], Dist: sparse.AngularDistance(dot)})
		}
	}
	for i := 1; i < len(in); i++ {
		for j := i; j > 0; j-- {
			a, b := in[j], in[j-1]
			if a.Dist < b.Dist || (a.Dist == b.Dist && a.ID < b.ID) {
				in[j], in[j-1] = in[j-1], in[j]
			} else {
				break
			}
		}
	}
	if k > 0 && k < len(in) {
		in = in[:k]
	}
	return in
}

func requireMatchesEqual(t *testing.T, label string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, oracle has %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s entry %d: doc %d, oracle says %d", label, i, got[i].ID, want[i].ID)
		}
		if d := got[i].Dist - want[i].Dist; d > 1e-9 || d < -1e-9 {
			t.Fatalf("%s entry %d: dist %v, oracle %v", label, i, got[i].Dist, want[i].Dist)
		}
	}
}

// TestStoreSearchMatchesOracle is half of the acceptance criterion:
// Search with WithRadius and WithK must equal the exhaustive-scan oracle
// on a Store — including a per-request radius wider than the one the
// Store was constructed with, which the frozen-config API could not
// answer at all. K=4 bits over M=16 → L=120 tables drives per-neighbor
// retrieval probability to ~1, and hashing is seeded, so the comparison
// is deterministic.
func TestStoreSearchMatchesOracle(t *testing.T) {
	// Construction radius 0.8 is NOT what most requests below use: every
	// radius is request-scoped.
	s, err := NewStore(Config{Dim: 2000, K: 4, M: 16, Radius: 0.8, Capacity: 500})
	if err != nil {
		t.Fatal(err)
	}
	docs := SyntheticTweets(250, 2000, 31)
	ids, err := s.Insert(bg, docs)
	if err != nil {
		t.Fatal(err)
	}
	for _, radius := range []float64{0.8, 1.0, 1.15} {
		var opts []SearchOption
		if radius != 0.8 {
			opts = []SearchOption{WithRadius(radius)}
		}
		for qi := 0; qi < len(docs); qi += 17 {
			q := docs[qi]
			got, err := s.Search(bg, q, opts...)
			if err != nil {
				t.Fatal(err)
			}
			requireMatchesEqual(t, "store r-near", got.Matches,
				oracleMatches(docs, ids, q, radius, 0))
			for _, k := range []int{1, 5} {
				bounded, err := s.Search(bg, q, append(opts[:len(opts):len(opts)], WithK(k))...)
				if err != nil {
					t.Fatal(err)
				}
				requireMatchesEqual(t, "store top-k", bounded.Matches,
					oracleMatches(docs, ids, q, radius, k))
			}
		}
	}
}

// searchTestAddrs serves n fresh TCP nodes with identical seeded hash
// families and returns their addresses.
func searchTestAddrs(t *testing.T, n, capacity int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		nd, err := node.New(node.Config{
			Params:   lshhash.Params{Dim: 2000, K: 4, M: 16, Seed: 42},
			Capacity: capacity,
			Build:    core.Defaults(),
			Query:    core.QueryDefaults(),
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		go transport.Serve(ctx, l, transport.NewLocal(nd), nil)
		addrs[i] = l.Addr().String()
	}
	return addrs
}

// TestClusterSearchMatchesOracle is the other half of the acceptance
// criterion: Search with WithRadius/WithK on a 4-node DialCluster (real
// TCP, so the request-scoped parameters cross the versioned opSearch
// frame) must equal the exhaustive-scan oracle over the global ID space.
func TestClusterSearchMatchesOracle(t *testing.T) {
	cl, err := DialCluster(bg, searchTestAddrs(t, 4, 100), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	docs := SyntheticTweets(250, 2000, 33)
	ids, err := cl.Insert(bg, docs)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < len(docs); qi += 19 {
		q := docs[qi]
		got, err := cl.Search(bg, q, WithRadius(1.1))
		if err != nil {
			t.Fatal(err)
		}
		requireMatchesEqual(t, "cluster r-near", got.Matches,
			oracleMatches(docs, ids, q, 1.1, 0))
		for _, k := range []int{1, 7, 30} {
			bounded, err := cl.Search(bg, q, WithRadius(1.1), WithK(k))
			if err != nil {
				t.Fatal(err)
			}
			requireMatchesEqual(t, "cluster top-k", bounded.Matches,
				oracleMatches(docs, ids, q, 1.1, k))
		}
	}
}

// TestLegacyWrappersMatchSearch pins the compatibility contract: every
// deprecated Query* method answers exactly what its Search equivalent
// answers, on Store and Cluster alike.
func TestLegacyWrappersMatchSearch(t *testing.T) {
	s, err := NewStore(Config{Dim: 2000, K: 4, M: 16, Radius: 1.1, Capacity: 500})
	if err != nil {
		t.Fatal(err)
	}
	docs := SyntheticTweets(200, 2000, 35)
	if _, err := s.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	queries := docs[:12]
	for qi, q := range queries {
		res, err := s.Search(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := s.Query(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, neighborsFromMatches(res.Matches)) {
			t.Fatalf("query %d: Query diverges from Search", qi)
		}
		topLegacy, err := s.QueryTopK(bg, q, 5)
		if err != nil {
			t.Fatal(err)
		}
		topNew, err := s.Search(bg, q, WithK(5))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(topLegacy, neighborsFromMatches(topNew.Matches)) {
			t.Fatalf("query %d: QueryTopK diverges from Search+WithK", qi)
		}
	}
	legacyBatch, err := s.QueryBatch(bg, queries)
	if err != nil {
		t.Fatal(err)
	}
	newBatch, _, err := s.SearchBatch(bg, queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		if !reflect.DeepEqual(legacyBatch[qi], neighborsFromMatches(newBatch[qi].Matches)) {
			t.Fatalf("query %d: QueryBatch diverges from SearchBatch", qi)
		}
	}

	cl, err := NewCluster(4, 2, Config{Dim: 2000, K: 4, M: 16, Radius: 1.1, Capacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	toMatches := func(ns []ClusterNeighbor) []Match {
		var out []Match
		for _, nb := range ns {
			out = append(out, Match{ID: GlobalID(nb.Node, nb.ID), Dist: nb.Dist})
		}
		return out
	}
	for qi, q := range queries {
		res, err := cl.Search(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := cl.Query(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(toMatches(legacy), res.Matches) {
			t.Fatalf("query %d: cluster Query diverges from Search", qi)
		}
		topLegacy, err := cl.QueryTopK(bg, q, 5)
		if err != nil {
			t.Fatal(err)
		}
		topNew, err := cl.Search(bg, q, WithK(5))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(toMatches(topLegacy), topNew.Matches) {
			t.Fatalf("query %d: cluster QueryTopK diverges from Search+WithK", qi)
		}
	}
	legacyTimed, legacyReport, err := cl.QueryBatchTimed(bg, queries, BatchOptions{
		PerNodeTimeout: time.Minute, Partial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	newTimed, newReport, err := cl.SearchBatch(bg, queries,
		WithNodeTimeout(time.Minute), AllowPartial())
	if err != nil {
		t.Fatal(err)
	}
	if !legacyReport.Complete() || !newReport.Complete() {
		t.Fatal("healthy cluster reported stragglers")
	}
	for qi := range queries {
		if !reflect.DeepEqual(toMatches(legacyTimed[qi]), newTimed[qi].Matches) {
			t.Fatalf("query %d: QueryBatchTimed diverges from SearchBatch", qi)
		}
	}
}

// TestSearchOptionValidation: invalid request-scoped values surface as
// errors from the call, not panics or silent clamps.
func TestSearchOptionValidation(t *testing.T) {
	s, err := NewStore(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	docs := SyntheticTweets(10, 2000, 3)
	if _, err := s.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	for name, opt := range map[string]SearchOption{
		"zero radius":       WithRadius(0),
		"negative radius":   WithRadius(-1),
		"zero k":            WithK(0),
		"negative k":        WithK(-3),
		"zero candidates":   WithMaxCandidates(0),
		"zero node timeout": WithNodeTimeout(0),
		"zero hedge":        WithHedge(0),
		"negative hedge":    WithHedge(-time.Second),
	} {
		if _, err := s.Search(bg, docs[0], opt); err == nil {
			t.Errorf("%s accepted by Search", name)
		}
		if _, _, err := s.SearchBatch(bg, docs[:2], opt); err == nil {
			t.Errorf("%s accepted by SearchBatch", name)
		}
	}
}

// TestSearchMaxCandidates: the candidate budget bounds work without
// breaking the answer contract — a budget at least the corpus size is a
// no-op, and any budget yields a subset of the unbounded answer.
func TestSearchMaxCandidates(t *testing.T) {
	s, err := NewStore(Config{Dim: 2000, K: 4, M: 16, Radius: 1.1, Capacity: 500})
	if err != nil {
		t.Fatal(err)
	}
	docs := SyntheticTweets(300, 2000, 39)
	if _, err := s.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < len(docs); qi += 41 {
		q := docs[qi]
		full, err := s.Search(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		roomy, err := s.Search(bg, q, WithMaxCandidates(len(docs)))
		if err != nil {
			t.Fatal(err)
		}
		requireMatchesEqual(t, "roomy budget", roomy.Matches, full.Matches)
		inFull := map[uint64]bool{}
		for _, m := range full.Matches {
			inFull[m.ID] = true
		}
		tight, err := s.Search(bg, q, WithMaxCandidates(3))
		if err != nil {
			t.Fatal(err)
		}
		if len(tight.Matches) > 3 {
			t.Fatalf("budget 3 answered %d matches", len(tight.Matches))
		}
		for _, m := range tight.Matches {
			if !inFull[m.ID] {
				t.Fatalf("budgeted search invented match %d", m.ID)
			}
		}
	}
}

// TestStoreSearchBatchReport: a Store reports itself as the single node
// 0 with a measured wall time, the uniform Report shape.
func TestStoreSearchBatchReport(t *testing.T) {
	s, err := NewStore(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	docs := SyntheticTweets(50, 2000, 3)
	if _, err := s.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	res, report, err := s.SearchBatch(bg, docs[:8], WithNodeTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 {
		t.Fatalf("%d results for 8 queries", len(res))
	}
	if len(report.Times) != 1 || len(report.Errs) != 1 || !report.Complete() {
		t.Fatalf("store report: %+v", report)
	}
	if report.Times[0] <= 0 {
		t.Fatal("store report carries no wall time")
	}
	// A canceled context fails the batch and blames the context.
	canceled, cancel := context.WithCancel(bg)
	cancel()
	if _, _, err := s.SearchBatch(canceled, docs[:2]); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled SearchBatch: %v", err)
	}
}

// TestClusterDoc: the cluster can hand back any stored vector by global
// ID — over TCP, via the opDoc wire op — with the holding node's
// authoritative known/unknown answer.
func TestClusterDoc(t *testing.T) {
	cl, err := DialCluster(bg, searchTestAddrs(t, 3, 200), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	docs := SyntheticTweets(120, 2000, 43)
	ids, err := cl.Insert(bg, docs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(docs); i += 11 {
		v, known, err := cl.Doc(bg, ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if !known {
			t.Fatalf("doc %d unknown to its node", i)
		}
		if v.NNZ() != docs[i].NNZ() {
			t.Fatalf("doc %d came back with %d terms, want %d", i, v.NNZ(), docs[i].NNZ())
		}
		for j := range v.Idx {
			if v.Idx[j] != docs[i].Idx[j] || v.Val[j] != docs[i].Val[j] {
				t.Fatalf("doc %d content mismatch", i)
			}
		}
	}
	// Unknown local id and nonexistent node are both simply unknown.
	if _, known, err := cl.Doc(bg, GlobalID(0, 5000)); err != nil || known {
		t.Fatalf("unknown local id: known=%v err=%v", known, err)
	}
	if _, known, err := cl.Doc(bg, GlobalID(99, 0)); err != nil || known {
		t.Fatalf("nonexistent node: known=%v err=%v", known, err)
	}
}
