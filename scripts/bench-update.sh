#!/usr/bin/env bash
# Promote the latest benchmark snapshot as the regression baseline.
# Run scripts/bench.sh first, eyeball benchmarks/latest.txt, then run this
# to make benchmarks/baseline.json the reference plsh-benchcmp (and the CI
# bench-regression job) compares future runs against. Regressions beyond
# BENCH_MAX_REGRESSION_PCT percent (default 5) of any tracked headline
# metric then fail the gate until either the code is fixed or a new
# baseline is deliberately promoted.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ ! -f benchmarks/latest.json ]; then
  echo "benchmarks/latest.json not found; run scripts/bench.sh first" >&2
  exit 1
fi
cp benchmarks/latest.json benchmarks/baseline.json
cp benchmarks/latest.txt benchmarks/baseline.txt
echo "promoted benchmarks/latest.{json,txt} -> benchmarks/baseline.{json,txt}"
