#!/usr/bin/env bash
# Run the benchmark suite and snapshot the results for regression
# tracking. The latest run always lands in benchmarks/latest.txt; pass a
# benchmark regex to narrow the run, e.g.:
#
#   scripts/bench.sh                  # everything
#   scripts/bench.sh 'Fig9|TopK'      # just the cluster benchmarks
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-.}"
mkdir -p benchmarks
{
  echo "# go test -bench '${pattern}' -benchmem ./..."
  echo "# $(go version)"
  go test -run '^$' -bench "${pattern}" -benchmem ./...
} | tee benchmarks/latest.txt
