#!/usr/bin/env bash
# Run the benchmark suite and snapshot the results for regression
# tracking. The latest run lands in benchmarks/latest.txt (human-readable)
# and benchmarks/latest.json (machine-readable, surfacing the
# query-latency-during-merge metric from BenchmarkQueryDuringMerge and the
# durability metrics — snapshot MB/s from BenchmarkSave, WAL-replay docs/s
# from BenchmarkRecover). Pass a benchmark regex to narrow the run, e.g.:
#
#   scripts/bench.sh                  # everything
#   scripts/bench.sh 'Fig9|TopK'      # just the cluster benchmarks
#   scripts/bench.sh QueryDuringMerge # just the non-blocking-merge metric
#   scripts/bench.sh SearchTopK     # just the unified-Search top-k metric
#   scripts/bench.sh 'Save|Recover'   # just the durability metrics
#   scripts/bench.sh SearchReplicated # replicas=1 vs 2, hedged vs not
#   scripts/bench.sh SearchRouted   # scatter vs partitioned routing
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-.}"
mkdir -p benchmarks
{
  echo "# go test -bench '${pattern}' -benchmem ./..."
  echo "# $(go version)"
  go test -run '^$' -bench "${pattern}" -benchmem ./...
} | tee benchmarks/latest.txt
go run ./cmd/plsh-bench2json < benchmarks/latest.txt > benchmarks/latest.json
echo "wrote benchmarks/latest.json"
