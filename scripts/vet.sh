#!/usr/bin/env bash
# The repository's full static gate, run identically by CI and by hand:
#
#   1. go vet          — the toolchain's standard checks
#   2. gofmt           — formatting drift fails, never auto-fixes
#   3. plsh-vet        — the custom invariant suite (internal/analysis):
#                        poolzero, releasecheck, ctxcheck, wireop,
#                        atomicsnap, snapfreeze, lockorder, walorder
#                        over every non-test package; analyzers run in
#                        parallel and per-analyzer wall time is printed
#
# Every failure prints file:line:col so CI annotations and editors can
# jump straight to the site. Exits nonzero on the first failing stage.
# Set PLSH_VET_REPORT to a path to also capture the findings + timing
# report there (CI uploads it as a build artifact).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet"
go vet "$@" ./...

echo "==> gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
  while IFS= read -r f; do
    echo "$f:1:1: gofmt: file is not gofmt-formatted" >&2
  done <<<"$unformatted"
  exit 1
fi

echo "==> plsh-vet"
bin="$(mktemp -d)/plsh-vet"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/plsh-vet
"$bin" -timing ${PLSH_VET_REPORT:+-report "$PLSH_VET_REPORT"} ./...

echo "static gate clean"
