#!/usr/bin/env bash
# Run the SLO-gated soak: a real 2×3 replicated, partitioned TCP fleet
# under sustained mixed load with SIGKILL/restart and SIGSTOP stall
# injection (cmd/plsh-soak). The harness exits nonzero when an SLO or a
# consistency check fails, so this script's exit code IS the verdict.
#
#   scripts/soak.sh                      # 60s default soak
#   scripts/soak.sh -duration 10s        # CI smoke
#   scripts/soak.sh -duration 5m -slo-search-p99 100ms   # tighter, longer
#
# All arguments are passed through to plsh-soak (see -h for the full
# set). The JSON report lands in benchmarks/soak-latest.json and the
# stdout bench lines in benchmarks/soak-latest.txt, which pipes through
# plsh-bench2json into benchmarks/soak-latest-bench.json so
# soak_search_p999_ns and soak_error_rate sit next to the
# microbenchmark snapshots.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p benchmarks
bin="$(mktemp -d)/plsh-soak"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/plsh-soak

status=0
"$bin" -report benchmarks/soak-latest.json "$@" | tee benchmarks/soak-latest.txt || status=$?
go run ./cmd/plsh-bench2json < benchmarks/soak-latest.txt > benchmarks/soak-latest-bench.json
if [ "$status" -ne 0 ]; then
  echo "soak FAILED (exit $status); see benchmarks/soak-latest.json" >&2
  exit "$status"
fi
echo "soak passed; wrote benchmarks/soak-latest.json"
