#!/usr/bin/env bash
# The hot-path allocation gate, run identically by CI and by hand:
#
#   1. plsh-allocvet over the tree — every function in
#      internal/analysis/allocgate/budget.txt must stay within its
#      heap-escape budget (a new escape on the Search/SearchBatch call
#      graph fails here, at compile time, before any benchmark runs)
#   2. plsh-allocvet over testdata/escapemod — the intentionally
#      escaping fixture MUST fail, proving the gate detects escapes at
#      all; a toolchain change that silenced -m diagnostics would
#      otherwise turn the gate into a silent no-op
#
# Set PLSH_ALLOCGATE_REPORT to a path to also capture the report there
# (CI uploads it as a build artifact).
set -euo pipefail
cd "$(dirname "$0")/.."

bin="$(mktemp -d)/plsh-allocvet"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/plsh-allocvet

echo "==> allocgate (tree)"
"$bin" ${PLSH_ALLOCGATE_REPORT:+-report "$PLSH_ALLOCGATE_REPORT"}

echo "==> allocgate (escape fixture must fail)"
if "$bin" -dir internal/analysis/allocgate/testdata/escapemod -budget budget.txt 2>/dev/null; then
  echo "allocgate.sh: escape fixture passed the gate; the gate is not detecting escapes" >&2
  exit 1
fi

echo "allocation gate clean"
