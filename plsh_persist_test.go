package plsh

import (
	"context"
	"errors"
	"math"
	"testing"

	"plsh/internal/sparse"
)

// TestConfigRejectsNegatives: normalize must refuse values the node layer
// would otherwise silently rewrite, so Store.Config never reports a
// setting that is not in effect.
func TestConfigRejectsNegatives(t *testing.T) {
	base := smallConfig()
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative radius", func(c *Config) { c.Radius = -0.5 }},
		{"negative capacity", func(c *Config) { c.Capacity = -1 }},
		{"negative delta fraction", func(c *Config) { c.DeltaFraction = -0.1 }},
		{"delta fraction over 1", func(c *Config) { c.DeltaFraction = 1.5 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := NewStore(cfg); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
		if _, err := NewCluster(2, 0, cfg); err == nil {
			t.Errorf("%s accepted by NewCluster", tc.name)
		}
	}
}

// TestConfigReportsEffectiveValues: defaults are filled in normalize, so
// what Config() reports is what the node runs with.
func TestConfigReportsEffectiveValues(t *testing.T) {
	s, err := NewStore(Config{Dim: 2000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.Capacity != 1<<20 {
		t.Fatalf("Capacity reported %d, node runs with %d", cfg.Capacity, 1<<20)
	}
	if cfg.DeltaFraction != 0.1 {
		t.Fatalf("DeltaFraction reported %v, node runs with 0.1", cfg.DeltaFraction)
	}
	if cfg.Radius != 0.9 {
		t.Fatalf("Radius reported %v, node runs with 0.9", cfg.Radius)
	}
}

// TestStoreDocBounds: the Doc-panic satellite at the public layer — an
// out-of-range id reports (zero, false) instead of crashing the process.
func TestStoreDocBounds(t *testing.T) {
	s, _ := NewStore(smallConfig())
	docs := SyntheticTweets(10, 2000, 3)
	ids, err := s.Insert(bg, docs)
	if err != nil {
		t.Fatal(err)
	}
	if v, known, err := s.Doc(bg, ids[4]); err != nil || !known || v.NNZ() == 0 {
		t.Fatal("valid doc not returned")
	}
	if v, known, err := s.Doc(bg, 10); err != nil || known || v.NNZ() != 0 {
		t.Fatal("out-of-range doc returned")
	}
	if _, known, _ := s.Doc(bg, math.MaxUint32); known {
		t.Fatal("huge id returned a doc")
	}
	if _, known, _ := s.Doc(bg, GlobalID(3, 0)); known {
		t.Fatal("foreign-node id returned a doc from a store")
	}
}

// TestStoreDeleteNotFound: deleting a never-inserted id is distinguishable
// from a real tombstone, on Store and Cluster alike.
func TestStoreDeleteNotFound(t *testing.T) {
	s, _ := NewStore(smallConfig())
	ids, err := s.Insert(bg, SyntheticTweets(10, 2000, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(bg, ids[0]); err != nil {
		t.Fatalf("valid delete: %v", err)
	}
	if err := s.Delete(bg, ids[0]); err != nil {
		t.Fatalf("repeated delete of a real doc must stay idempotent: %v", err)
	}
	if err := s.Delete(bg, 10); !errors.Is(err, ErrNotFound) {
		t.Fatalf("out-of-range delete: want ErrNotFound, got %v", err)
	}

	cl, err := NewCluster(2, 0, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	gids, err := cl.Insert(bg, SyntheticTweets(10, 2000, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete(bg, gids[0]); err != nil {
		t.Fatalf("valid cluster delete: %v", err)
	}
	if err := cl.Delete(bg, GlobalID(99, 0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("bad node delete: want ErrNotFound, got %v", err)
	}
	if err := cl.Delete(bg, GlobalID(0, 5000)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("bad local-id delete: want ErrNotFound, got %v", err)
	}
}

// TestStoreSaveOpenOracle is the acceptance round-trip: Save → Open must
// reproduce query results bit-identically, and both stores' answers are
// verified against an exhaustive-scan oracle (every reported neighbor is
// truly within the radius at its reported distance, and a store always
// finds the query document itself).
func TestStoreSaveOpenOracle(t *testing.T) {
	s, err := NewStore(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	docs := SyntheticTweets(400, 2000, 23)
	ids, err := s.Insert(bg, docs)
	if err != nil {
		t.Fatal(err)
	}
	deleted := map[uint64]bool{}
	for _, i := range []int{3, 111, 222} {
		if err := s.Delete(bg, ids[i]); err != nil {
			t.Fatal(err)
		}
		deleted[ids[i]] = true
	}

	dir := t.TempDir()
	if err := s.SaveTo(bg, dir); err != nil {
		t.Fatal(err)
	}
	re, err := Open(bg, dir, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != s.Len() {
		t.Fatalf("reopened Len %d vs %d", re.Len(), s.Len())
	}

	radius := s.Config().Radius
	for qi := 0; qi < len(docs); qi += 13 {
		q := docs[qi]
		a, err := s.Search(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := re.Search(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		// Bit-identical round trip.
		if len(a.Matches) != len(b.Matches) {
			t.Fatalf("query %d: %d vs %d results after reopen", qi, len(a.Matches), len(b.Matches))
		}
		seen := map[uint64]float64{}
		for _, m := range a.Matches {
			seen[m.ID] = m.Dist
		}
		for _, m := range b.Matches {
			if d, ok := seen[m.ID]; !ok || d != m.Dist {
				t.Fatalf("query %d: neighbor %d differs after reopen", qi, m.ID)
			}
		}
		// Exhaustive-scan oracle: reported distances are the true angular
		// distances, within radius, never deleted; the query doc itself
		// (distance 0) is always reported unless deleted.
		for _, m := range b.Matches {
			if deleted[m.ID] {
				t.Fatalf("query %d: deleted doc %d returned", qi, m.ID)
			}
			v, known, err := re.Doc(bg, m.ID)
			if err != nil || !known {
				t.Fatalf("query %d: neighbor %d has no document", qi, m.ID)
			}
			want := sparse.AngularDistance(sparse.Dot(q, v))
			if math.Abs(m.Dist-want) > 1e-9 {
				t.Fatalf("query %d: neighbor %d distance %v, oracle %v", qi, m.ID, m.Dist, want)
			}
			if m.Dist > radius {
				t.Fatalf("query %d: neighbor %d outside radius", qi, m.ID)
			}
		}
		if !deleted[ids[qi]] {
			if _, ok := seen[ids[qi]]; !ok {
				t.Fatalf("query %d: self not found", qi)
			}
		}
	}
}

// TestOpenDurableLifecycle: the ctx-aware public open/journal/reopen path,
// including writes after reopen and a second recovery.
func TestOpenDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	s, err := Open(bg, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := SyntheticTweets(120, 2000, 29)
	if _, err := s.Insert(bg, docs[:60]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen, write more, delete, reopen again.
	s2, err := Open(bg, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 60 {
		t.Fatalf("first recovery: Len %d", s2.Len())
	}
	ids, err := s2.Insert(bg, docs[60:])
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Delete(bg, ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(bg, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 120 {
		t.Fatalf("second recovery: Len %d", s3.Len())
	}
	res, err := s3.Search(bg, docs[60])
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matches {
		if m.ID == ids[0] {
			t.Fatal("journaled tombstone lost across recovery")
		}
	}
	// A canceled recovery context aborts the open.
	canceled, cancel := context.WithCancel(bg)
	cancel()
	if _, err := Open(canceled, dir, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled open: %v", err)
	}
}

// TestClusterDurableSaveAllRecovery: a durable in-process cluster —
// per-node subdirectories under one root — checkpoints with SaveAll and
// a fresh cluster over the same root recovers identical answers.
func TestClusterDurableSaveAllRecovery(t *testing.T) {
	cfg := smallConfig()
	cfg.Capacity = 200
	cfg.Dir = t.TempDir()
	cl, err := NewCluster(3, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := SyntheticTweets(300, 2000, 37)
	ids, err := cl.Insert(bg, docs)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete(bg, ids[7]); err != nil {
		t.Fatal(err)
	}
	want := make([][]ClusterNeighbor, 0, 20)
	queries := docs[:20]
	for _, q := range queries {
		res, err := cl.Query(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	if err := cl.Save(bg); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := NewCluster(3, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for qi, q := range queries {
		res, err := re.Query(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(want[qi]) {
			t.Fatalf("query %d: %d results after cluster recovery, want %d", qi, len(res), len(want[qi]))
		}
		seen := map[uint64]float64{}
		for _, nb := range want[qi] {
			seen[GlobalID(nb.Node, nb.ID)] = nb.Dist
		}
		for _, nb := range res {
			if d, ok := seen[GlobalID(nb.Node, nb.ID)]; !ok || d != nb.Dist {
				t.Fatalf("query %d: neighbor %+v differs after cluster recovery", qi, nb)
			}
		}
	}

	// An in-memory cluster refuses SaveAll rather than pretending.
	mem, err := NewCluster(2, 0, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if err := mem.Save(bg); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Save on in-memory cluster: want ErrNotDurable, got %v", err)
	}
}
