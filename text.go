package plsh

import (
	"plsh/internal/corpus"
	"plsh/internal/vocab"
)

// Encoder converts text to IDF-weighted unit Vectors, the representation
// the paper uses for tweets (§8: lowercase, strip non-alphabet characters,
// drop stop words, weight by inverse document frequency, normalize).
//
// Feed the corpus (or a representative sample) through Observe first so
// document frequencies are meaningful, then Encode documents and queries.
// An Encoder is not safe for concurrent use.
type Encoder struct {
	v   *vocab.Vocabulary
	dim int
}

// NewEncoder returns an Encoder whose vector space has the given
// dimensionality. Words beyond dim are dropped at encode time; size the
// space generously (the paper uses 500,000).
func NewEncoder(dim int) *Encoder {
	return &Encoder{v: vocab.New(), dim: dim}
}

// Observe registers one document's text for vocabulary and document-
// frequency accounting.
func (e *Encoder) Observe(text string) {
	e.v.ObserveDoc(vocab.Tokenize(text))
}

// Encode converts text to a unit vector against the observed vocabulary.
// ok is false when no known word survives cleaning (the paper ignores such
// "0-length" documents).
func (e *Encoder) Encode(text string) (Vector, bool) {
	return e.v.Encode(text, e.dim)
}

// ObserveAndEncode interns the document's words, updates document
// frequencies, and encodes it in one pass — the streaming-ingest path.
func (e *Encoder) ObserveAndEncode(text string) (Vector, bool) {
	toks := vocab.Tokenize(text)
	e.v.ObserveDoc(toks)
	ids := make([]uint32, 0, len(toks))
	for _, t := range toks {
		if id, ok := e.v.Lookup(t); ok {
			ids = append(ids, id)
		}
	}
	return e.v.EncodeIDs(ids, e.dim)
}

// VocabSize returns the number of distinct observed words.
func (e *Encoder) VocabSize() int { return e.v.Size() }

// Dim returns the encoder's vector-space dimensionality.
func (e *Encoder) Dim() int { return e.dim }

// SyntheticTweets generates n deterministic tweet-like unit vectors over a
// vocabulary of the given size: Zipf-distributed words, ~7.2 words per
// document, and a realistic fraction of near-duplicates ("retweets"). Use
// it to exercise the library without a corpus; the repository's benchmarks
// are built on the same generator.
func SyntheticTweets(n, vocabSize int, seed uint64) []Vector {
	c := corpus.Generate(corpus.Twitter(n, vocabSize, seed))
	out := make([]Vector, n)
	for i := 0; i < n; i++ {
		out[i] = c.Mat.Row(i)
	}
	return out
}
