package plsh

import (
	"fmt"

	"plsh/internal/perfmodel"
	"plsh/internal/sparse"
)

// TuneOptions constrains the §7.3 parameter search.
type TuneOptions struct {
	// Radius is the target R (default 0.9).
	Radius float64
	// Delta is the acceptable miss probability per true neighbor
	// (default 0.1 → ≥90% recall at the radius boundary).
	Delta float64
	// MemoryBudget caps the hash-table footprint in bytes, Eq. 7.4
	// (default 1 GiB).
	MemoryBudget int64
	// TargetN is the dataset size to optimize for; defaults to the sample
	// size (use the expected production size for capacity planning).
	TargetN int
	// MaxK and MaxM bound the enumeration (defaults 24 and 64).
	MaxK, MaxM int
	// Seed controls sampling (default 1).
	Seed uint64
}

// Tuning is a selected parameter point with its predicted per-query cost.
type Tuning struct {
	K, M, L          int
	PredictedQueryNS float64
	MemoryBytes      int64
}

// Tune runs the paper's model-driven parameter selection on a sample of
// the corpus: it calibrates the machine's per-operation costs, estimates
// E[#collisions] and E[#unique] for each feasible (k, m) by sampling
// pairwise distances, and returns the cheapest choice meeting the recall
// constraint P′(R, k, m) ≥ 1−Delta within the memory budget.
//
// Apply the result by setting Config.K and Config.M.
func Tune(sample []Vector, opts TuneOptions) (Tuning, error) {
	if len(sample) < 2 {
		return Tuning{}, fmt.Errorf("plsh: Tune needs at least 2 sample documents, got %d", len(sample))
	}
	if opts.Radius == 0 {
		opts.Radius = 0.9
	}
	if opts.Delta == 0 {
		opts.Delta = 0.1
	}
	if opts.MemoryBudget == 0 {
		opts.MemoryBudget = 1 << 30
	}
	if opts.MaxK == 0 {
		opts.MaxK = 24
	}
	if opts.MaxM == 0 {
		opts.MaxM = 64
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	dim := 0
	for _, v := range sample {
		if n := v.NNZ(); n > 0 {
			if d := int(v.Idx[n-1]) + 1; d > dim {
				dim = d
			}
		}
	}
	if dim == 0 {
		return Tuning{}, fmt.Errorf("plsh: Tune sample contains only empty vectors")
	}
	mat := sparse.NewMatrix(dim, len(sample), len(sample)*8)
	for _, v := range sample {
		mat.AppendRow(v)
	}
	nq := min(len(sample), 1000)
	np := min(len(sample), 1000)
	w := perfmodel.SampleWorkload(mat, nq, np, opts.Seed)
	if opts.TargetN > 0 {
		w.N = opts.TargetN
	}
	costs := perfmodel.Calibrate(dim, w.MeanNNZ, opts.Seed)
	choice, err := perfmodel.Select(costs, w, opts.Radius, opts.Delta, opts.MaxK, opts.MaxM, opts.MemoryBudget)
	if err != nil {
		return Tuning{}, fmt.Errorf("plsh: %w", err)
	}
	return Tuning{
		K: choice.K, M: choice.M, L: choice.L,
		PredictedQueryNS: choice.Est.TotalNS,
		MemoryBytes:      choice.MemoryBytes,
	}, nil
}
