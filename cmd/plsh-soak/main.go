// Command plsh-soak drives a real replicated, partitioned PLSH cluster —
// genuine plsh-node processes over TCP, spawned through the same
// internal/clustertest harness as the fault-injection suite — with
// sustained mixed load (concurrent inserts, searches, deletes, and
// periodic merges) while injecting faults: SIGKILL/restart cycles and
// SIGSTOP/SIGCONT stalls on randomly chosen replicas. It is the
// answer to "does the cluster hold its latency and correctness story
// under minutes of churn", not microseconds of benchmark.
//
// Throughout the run a client-side mirror of every acknowledged write is
// the oracle: sampled search answers are checked for soundness (every
// returned match really is within the query radius, recomputed from the
// mirror), self-retrieval (an acknowledged document must find itself by
// global ID — never by distance, which float32 normalization makes
// treacherous), and aggregate recall against the exhaustive in-radius
// set. Latencies are recorded per operation in lock-free log-scale
// histograms (internal/histo) and checked against SLOs at exit:
//
//	plsh-soak -duration 60s -groups 2 -replicas 3 \
//	    -slo-search-p99 250ms -max-error-rate 0.01 -report soak.json
//
// Exit status: 0 when every SLO and consistency check held, 1 on an SLO
// or correctness violation, 2 on a harness failure (could not spawn or
// restart the fleet, etc.).
//
// Fault model and the write gate: searches run completely ungated
// through every kill and stall — masking replica loss is the read
// path's whole job, and the report requires the injected faults to have
// actually exercised it (failovers > 0 after kills, hedge wins > 0
// after stalls). Writes, however, are quiesced around SIGKILL windows:
// group-mirrored inserts are not atomic under member loss — a batch
// accepted by two replicas while the third is down diverges the mirrors
// permanently (the survivors assign local IDs the victim never will) —
// so the harness drains in-flight writes before each kill and resumes
// them after the victim rejoins. SIGSTOP stalls need no gate: a stalled
// member journals the write after SIGCONT, so writes just block briefly.
// Write atomicity under member loss (undo or anti-entropy repair) is an
// open roadmap item; until it lands, coordinated chaos is the honest
// soak.
//
// The run ends with a JSON report (CoordStats, per-node server counters,
// WAL fsync quantiles, client latency quantiles, recall) and go-bench
// formatted lines on stdout so scripts/soak.sh can pipe the result
// through plsh-bench2json next to the microbenchmark snapshots.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"plsh"
	"plsh/internal/clustertest"
	"plsh/internal/histo"
	"plsh/internal/sparse"
)

func main() {
	os.Exit(run())
}

// config is the parsed flag set, echoed into the JSON report.
type config struct {
	Duration      time.Duration `json:"duration"`
	Groups        int           `json:"groups"`
	Replicas      int           `json:"replicas"`
	Dim           int           `json:"dim"`
	K             int           `json:"k"`
	M             int           `json:"m"`
	Seed          uint64        `json:"seed"`
	Capacity      int           `json:"capacity"`
	Radius        float64       `json:"radius"`
	RoutingRecall float64       `json:"routing_recall"`
	Scatter       bool          `json:"scatter"`
	Fsync         bool          `json:"fsync"`
	InsertRate    int           `json:"insert_rate"`
	Searchers     int           `json:"searchers"`
	QueryBatch    int           `json:"query_batch"`
	DeleteEvery   time.Duration `json:"delete_every"`
	MergeEvery    time.Duration `json:"merge_every"`
	KillEvery     time.Duration `json:"kill_every"`
	Downtime      time.Duration `json:"downtime"`
	StallFor      time.Duration `json:"stall_for"`
	Hedge         time.Duration `json:"hedge"`
	NodeTimeout   time.Duration `json:"node_timeout"`
	SampleEvery   int           `json:"sample_every"`
	SLOSearchP99  time.Duration `json:"slo_search_p99"`
	MaxErrorRate  float64       `json:"max_error_rate"`
	MinRecall     float64       `json:"min_recall"`
}

// report is the machine-readable outcome written by -report and
// summarized on stdout.
type report struct {
	Config     config    `json:"config"`
	StartedAt  time.Time `json:"started_at"`
	WallSec    float64   `json:"wall_sec"`
	Kills      int       `json:"kills"`
	Stalls     int       `json:"stalls"`
	Inserted   uint64    `json:"inserted_docs"`
	Deleted    uint64    `json:"deleted_docs"`
	Searches   uint64    `json:"search_batches"`
	Queries    uint64    `json:"queries"`
	Merges     uint64    `json:"merges_ok"`
	MergeSkips uint64    `json:"merges_skipped"`

	SearchP50NS  int64 `json:"search_p50_ns"`
	SearchP99NS  int64 `json:"search_p99_ns"`
	SearchP999NS int64 `json:"search_p999_ns"`
	InsertP50NS  int64 `json:"insert_p50_ns"`
	InsertP99NS  int64 `json:"insert_p99_ns"`
	DeleteP50NS  int64 `json:"delete_p50_ns"`
	DeleteP99NS  int64 `json:"delete_p99_ns"`

	SearchErrors uint64  `json:"search_errors"`
	WriteErrors  uint64  `json:"write_errors"`
	Violations   uint64  `json:"violations"`
	ErrorRate    float64 `json:"error_rate"`

	Samples     uint64  `json:"verified_samples"`
	Recall      float64 `json:"recall"`
	RecallNoise uint64  `json:"recall_samples_skipped"`

	Coord plsh.CoordStats `json:"coord"`
	// Server-side totals summed over the fleet's final Stats broadcast.
	NodeSearches  uint64 `json:"node_searches_served"`
	NodeInserts   uint64 `json:"node_inserts_served"`
	NodeDeletes   uint64 `json:"node_deletes_served"`
	NodeMerges    int    `json:"node_merges"`
	WALFsyncP99NS int64  `json:"wal_fsync_p99_ns"`

	SLOFailures []string `json:"slo_failures"`
}

// soak owns the run: fleet, coordinator, oracle mirror, histograms, and
// counters. All counter fields are atomics; the mirror has its own lock.
type soak struct {
	cfg   config
	fleet *clustertest.Fleet
	cl    *plsh.Cluster
	docs  []plsh.Vector // pregenerated corpus, consumed in order by the inserter

	// writeGate quiesces inserts and deletes around SIGKILL windows (see
	// the package comment); writers hold RLock per operation, the chaos
	// goroutine holds Lock across kill→downtime→restart.
	writeGate sync.RWMutex

	mirror mirror

	searchHist, insertHist, deleteHist histo.Histogram

	inserted, deleted, searches, queries atomic.Uint64
	merges, mergeSkips                   atomic.Uint64
	searchErrors, writeErrors            atomic.Uint64
	violations, samples                  atomic.Uint64
	recallHits, recallWant, recallSkips  atomic.Uint64
	kills, stalls                        atomic.Uint64
	full                                 atomic.Bool // capacity reached; ingest stopped
}

// mirror is the client-side oracle: every acknowledged live document,
// plus tombstones for acknowledged deletes (a match on a recently
// deleted ID is delete-lag, not corruption).
type mirror struct {
	mu      sync.Mutex
	vecs    map[uint64]plsh.Vector
	ids     []uint64 // live IDs for O(1) random pick (swap-remove on delete)
	pos     map[uint64]int
	deleted map[uint64]bool
}

func (m *mirror) add(id uint64, v plsh.Vector) {
	m.mu.Lock()
	m.vecs[id] = v
	m.pos[id] = len(m.ids)
	m.ids = append(m.ids, id)
	m.mu.Unlock()
}

// pick returns a uniformly random live document, or ok=false when the
// mirror is empty.
func (m *mirror) pick(rng *rand.Rand) (id uint64, v plsh.Vector, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.ids) == 0 {
		return 0, plsh.Vector{}, false
	}
	id = m.ids[rng.Intn(len(m.ids))]
	return id, m.vecs[id], true
}

// remove tombstones an acknowledged delete.
func (m *mirror) remove(id uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	i, ok := m.pos[id]
	if !ok {
		return
	}
	last := len(m.ids) - 1
	m.ids[i] = m.ids[last]
	m.pos[m.ids[i]] = i
	m.ids = m.ids[:last]
	delete(m.pos, id)
	delete(m.vecs, id)
	m.deleted[id] = true
}

// classify says what the mirror knows about an ID: live (with its
// vector), tombstoned, or never acknowledged.
func (m *mirror) classify(id uint64) (v plsh.Vector, live, tomb bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.vecs[id]; ok {
		return v, true, false
	}
	return plsh.Vector{}, false, m.deleted[id]
}

// snapshot copies the live set for an exhaustive oracle scan.
func (m *mirror) snapshot() map[uint64]plsh.Vector {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[uint64]plsh.Vector, len(m.vecs))
	for id, v := range m.vecs {
		out[id] = v
	}
	return out
}

func run() int {
	var cfg config
	flag.DurationVar(&cfg.Duration, "duration", 60*time.Second, "how long to sustain the mixed load")
	flag.IntVar(&cfg.Groups, "groups", 2, "replica groups")
	flag.IntVar(&cfg.Replicas, "replicas", 3, "replicas per group")
	flag.IntVar(&cfg.Dim, "dim", 2000, "vector-space dimensionality")
	flag.IntVar(&cfg.K, "k", 4, "bits per hash table")
	flag.IntVar(&cfg.M, "m", 16, "half-width hash functions")
	flag.Uint64Var(&cfg.Seed, "seed", 42, "hash-family and corpus seed")
	flag.IntVar(&cfg.Capacity, "capacity", 20000, "per-node document capacity")
	flag.Float64Var(&cfg.Radius, "radius", 0.6, "query radius in radians (also the oracle's)")
	flag.Float64Var(&cfg.RoutingRecall, "routing-recall", 0.9, "partitioned routing recall target")
	flag.BoolVar(&cfg.Scatter, "scatter", false, "scatter placement instead of partitioned routing")
	flag.BoolVar(&cfg.Fsync, "fsync", true, "fsync every journal append on the nodes")
	flag.IntVar(&cfg.InsertRate, "insert-rate", 250, "sustained insert rate, documents/second")
	flag.IntVar(&cfg.Searchers, "searchers", 4, "concurrent search workers")
	flag.IntVar(&cfg.QueryBatch, "query-batch", 4, "queries per SearchBatch call")
	flag.DurationVar(&cfg.DeleteEvery, "delete-every", 250*time.Millisecond, "interval between single-document deletes")
	flag.DurationVar(&cfg.MergeEvery, "merge-every", 10*time.Second, "interval between cluster-wide merges")
	flag.DurationVar(&cfg.KillEvery, "kill-every", 15*time.Second, "interval between injected faults (0 disables chaos)")
	flag.DurationVar(&cfg.Downtime, "downtime", 2*time.Second, "how long a SIGKILLed replica stays down")
	flag.DurationVar(&cfg.StallFor, "stall-for", 300*time.Millisecond, "how long a SIGSTOPped replica stays frozen")
	flag.DurationVar(&cfg.Hedge, "hedge", time.Millisecond, "search hedge delay (0 disables hedging)")
	flag.DurationVar(&cfg.NodeTimeout, "node-timeout", 500*time.Millisecond, "per-replica search attempt timeout")
	flag.IntVar(&cfg.SampleEvery, "sample-every", 32, "verify every Nth search batch against the oracle")
	flag.DurationVar(&cfg.SLOSearchP99, "slo-search-p99", 250*time.Millisecond, "search p99 latency SLO")
	flag.Float64Var(&cfg.MaxErrorRate, "max-error-rate", 0.01, "failed ops + violations over total ops SLO")
	flag.Float64Var(&cfg.MinRecall, "min-recall", 0.60, "aggregate sampled recall floor")
	reportPath := flag.String("report", "", "write the JSON report here ('' = stdout summary only)")
	dataRoot := flag.String("data", "", "fleet data root (default: a fresh temp directory)")
	flag.Parse()

	if *dataRoot == "" {
		dir, err := os.MkdirTemp("", "plsh-soak-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "plsh-soak: %v\n", err)
			return 2
		}
		defer os.RemoveAll(dir)
		*dataRoot = dir
	}

	s := &soak{cfg: cfg}
	s.mirror = mirror{
		vecs:    make(map[uint64]plsh.Vector),
		pos:     make(map[uint64]int),
		deleted: make(map[uint64]bool),
	}

	// Size the corpus to the run: everything the inserter could possibly
	// push, bounded by what the fleet can hold (partitioned placement
	// never retires, so leave hash-imbalance headroom).
	want := int(float64(cfg.InsertRate)*cfg.Duration.Seconds()*1.2) + 512
	limit := cfg.Groups * cfg.Capacity * 3 / 4
	if want > limit {
		want = limit
	}
	fmt.Fprintf(os.Stderr, "plsh-soak: generating %d-document corpus (dim=%d)\n", want, cfg.Dim)
	s.docs = plsh.SyntheticTweets(want, cfg.Dim, cfg.Seed+1)

	fmt.Fprintf(os.Stderr, "plsh-soak: spawning %d×%d fleet under %s\n", cfg.Groups, cfg.Replicas, *dataRoot)
	nodeArgs := []string{
		"-dim", fmt.Sprint(cfg.Dim), "-k", fmt.Sprint(cfg.K), "-m", fmt.Sprint(cfg.M),
		"-seed", fmt.Sprint(cfg.Seed), "-capacity", fmt.Sprint(cfg.Capacity),
		"-r", fmt.Sprint(cfg.Radius),
	}
	if cfg.Fsync {
		nodeArgs = append(nodeArgs, "-fsync")
	}
	fleet, err := clustertest.Spawn(cfg.Groups*cfg.Replicas, *dataRoot, nodeArgs...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plsh-soak: spawn fleet: %v\n", err)
		return 2
	}
	defer fleet.KillAll()
	s.fleet = fleet

	bg := context.Background()
	dopts := []plsh.DialOption{plsh.WithReplicas(cfg.Replicas)}
	windowM := cfg.Groups
	if !cfg.Scatter {
		windowM = 0
		dopts = append(dopts, plsh.WithPartitioned(plsh.Config{
			Dim: cfg.Dim, K: cfg.K, M: cfg.M, Seed: cfg.Seed,
			RoutingRecall: cfg.RoutingRecall,
		}))
	}
	cl, err := plsh.DialCluster(bg, fleet.Addrs(), windowM, dopts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plsh-soak: dial cluster: %v\n", err)
		return 2
	}
	defer cl.Close()
	s.cl = cl

	started := time.Now()
	ctx, cancel := context.WithTimeout(bg, cfg.Duration)
	defer cancel()

	harnessErr := make(chan error, 1)
	var wg sync.WaitGroup
	start := func(f func()) { wg.Add(1); go func() { defer wg.Done(); f() }() }

	start(func() { s.insertLoop(ctx) })
	start(func() { s.deleteLoop(ctx) })
	start(func() { s.mergeLoop(ctx) })
	for i := 0; i < cfg.Searchers; i++ {
		seed := int64(cfg.Seed) + int64(i)*7919
		start(func() { s.searchLoop(ctx, seed) })
	}
	if cfg.KillEvery > 0 {
		start(func() { s.chaosLoop(ctx, harnessErr) })
	}
	wg.Wait()

	select {
	case err := <-harnessErr:
		fmt.Fprintf(os.Stderr, "plsh-soak: harness: %v\n", err)
		return 2
	default:
	}

	// Quiesce: every node back up, then a final verification pass and the
	// server-side stats sweep over the whole fleet.
	for _, nd := range fleet.Nodes {
		if !nd.Running() {
			if err := nd.Start(); err != nil {
				fmt.Fprintf(os.Stderr, "plsh-soak: final restart: %v\n", err)
				return 2
			}
		}
	}
	fctx, fcancel := context.WithTimeout(bg, 30*time.Second)
	defer fcancel()
	s.finalAudit(fctx)

	rep := s.buildReport(fctx, started)
	printSummary(rep)
	if *reportPath != "" {
		if err := writeReport(*reportPath, rep); err != nil {
			fmt.Fprintf(os.Stderr, "plsh-soak: write report: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "plsh-soak: report written to %s\n", *reportPath)
	}
	if len(rep.SLOFailures) > 0 {
		for _, f := range rep.SLOFailures {
			fmt.Fprintf(os.Stderr, "plsh-soak: SLO VIOLATION: %s\n", f)
		}
		return 1
	}
	fmt.Fprintln(os.Stderr, "plsh-soak: all SLOs held")
	return 0
}

// searchOpts is the per-batch option set every search uses.
func (s *soak) searchOpts() []plsh.SearchOption {
	opts := []plsh.SearchOption{plsh.WithNodeTimeout(s.cfg.NodeTimeout), plsh.WithK(256)}
	if s.cfg.Hedge > 0 {
		opts = append(opts, plsh.WithHedge(s.cfg.Hedge))
	}
	return opts
}

// insertLoop streams the corpus at -insert-rate in small batches,
// mirroring every acknowledged document. A batch that fails leaves its
// unplaced documents dropped forever — retrying a batch that some
// replicas may already hold would duplicate it — so drops are counted
// as write errors (the write gate makes them rare).
func (s *soak) insertLoop(ctx context.Context) {
	const batch = 8
	interval := time.Second * batch / time.Duration(max(1, s.cfg.InsertRate))
	tick := time.NewTicker(interval)
	defer tick.Stop()
	next := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if next+batch > len(s.docs) || s.full.Load() {
			return // corpus exhausted or fleet full: stop ingest, keep the rest of the mix running
		}
		docs := s.docs[next : next+batch]
		next += batch

		s.writeGate.RLock()
		t0 := time.Now()
		ids, err := s.cl.Insert(ctx, docs)
		s.insertHist.Record(time.Since(t0))
		s.writeGate.RUnlock()

		switch {
		case err == nil:
			for i, id := range ids {
				s.mirror.add(id, docs[i])
			}
			s.inserted.Add(uint64(len(docs)))
		case errors.Is(err, plsh.ErrFull):
			s.full.Store(true)
			fmt.Fprintf(os.Stderr, "plsh-soak: fleet full after %d documents; ingest stopped\n", s.inserted.Load())
		default:
			var ie *plsh.InsertError
			dropped := len(docs)
			if errors.As(err, &ie) {
				for i, ok := range ie.Placed {
					if ok {
						s.mirror.add(ie.IDs[i], docs[i])
						s.inserted.Add(1)
						dropped--
					}
				}
			}
			if ctx.Err() != nil {
				return // shutdown tore the call, not the cluster
			}
			s.writeErrors.Add(uint64(dropped))
			fmt.Fprintf(os.Stderr, "plsh-soak: insert dropped %d documents: %v\n", dropped, err)
		}
	}
}

// deleteLoop tombstones one random live document per interval.
func (s *soak) deleteLoop(ctx context.Context) {
	rng := rand.New(rand.NewSource(int64(s.cfg.Seed) ^ 0x5eed))
	tick := time.NewTicker(s.cfg.DeleteEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		id, _, ok := s.mirror.pick(rng)
		if !ok {
			continue
		}
		s.writeGate.RLock()
		t0 := time.Now()
		err := s.cl.Delete(ctx, id)
		s.deleteHist.Record(time.Since(t0))
		s.writeGate.RUnlock()
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			s.writeErrors.Add(1)
			fmt.Fprintf(os.Stderr, "plsh-soak: delete %d: %v\n", id, err)
			continue
		}
		s.mirror.remove(id)
		s.deleted.Add(1)
	}
}

// mergeLoop triggers cluster-wide merges; a merge that fails because a
// replica is down is skipped, not an error — the next round covers it.
func (s *soak) mergeLoop(ctx context.Context) {
	tick := time.NewTicker(s.cfg.MergeEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if err := s.cl.Merge(ctx); err != nil {
			s.mergeSkips.Add(1)
		} else {
			s.merges.Add(1)
		}
	}
}

// searchLoop self-queries random live documents continuously, recording
// batch latency and verifying every -sample-every'th batch against the
// mirror oracle.
func (s *soak) searchLoop(ctx context.Context, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	opts := s.searchOpts()
	n := 0
	for ctx.Err() == nil {
		ids := make([]uint64, 0, s.cfg.QueryBatch)
		qs := make([]plsh.Vector, 0, s.cfg.QueryBatch)
		for len(qs) < s.cfg.QueryBatch {
			id, v, ok := s.mirror.pick(rng)
			if !ok {
				break
			}
			ids = append(ids, id)
			qs = append(qs, v)
		}
		if len(qs) == 0 {
			time.Sleep(20 * time.Millisecond) // ingest has not primed the mirror yet
			continue
		}
		// Sampled batches snapshot the oracle before the search so recall
		// is judged against what the cluster had acknowledged by then.
		n++
		var oracle map[uint64]plsh.Vector
		if n%s.cfg.SampleEvery == 0 {
			oracle = s.mirror.snapshot()
		}

		t0 := time.Now()
		res, rep, err := s.cl.SearchBatch(ctx, qs, opts...)
		s.searchHist.Record(time.Since(t0))
		if err != nil || !rep.Complete() {
			if ctx.Err() != nil {
				return
			}
			s.searchErrors.Add(1)
			fmt.Fprintf(os.Stderr, "plsh-soak: search: err=%v complete=%v\n", err, err == nil && rep.Complete())
			continue
		}
		s.searches.Add(1)
		s.queries.Add(uint64(len(qs)))
		if oracle != nil {
			s.verifySample(ctx, ids[0], qs[0], res[0].Matches, oracle)
		}
	}
}

// verifySample checks one answered query against the mirror: soundness
// of every returned match, self-retrieval by global ID, and recall
// against the exhaustive in-radius set over the pre-search snapshot.
func (s *soak) verifySample(ctx context.Context, qid uint64, q plsh.Vector, matches []plsh.Match, oracle map[uint64]plsh.Vector) {
	s.samples.Add(1)
	cosThr := sparse.CosThreshold(s.cfg.Radius)
	// Soundness: a match must be a live acknowledged document within the
	// radius (re-verified by recomputing the dot product), or a tombstone
	// the answer path has not caught up with yet, or a document
	// acknowledged after our snapshot (still fine — classify sees the
	// live mirror, not the snapshot).
	selfSeen := false
	for _, m := range matches {
		if m.ID == qid {
			selfSeen = true
		}
		v, live, tomb := s.mirror.classify(m.ID)
		switch {
		case live:
			// Slack on the threshold: the nodes' float32 pipeline and this
			// float64 recomputation legitimately disagree in the last bits.
			if sparse.Dot(q, v) < cosThr-5e-3 {
				s.violations.Add(1)
				fmt.Fprintf(os.Stderr, "plsh-soak: VIOLATION: match %d is outside the query radius (dist %.4f > %v)\n",
					m.ID, sparse.AngularDistance(sparse.Dot(q, v)), s.cfg.Radius)
			}
		case tomb:
			// Delete lag; acceptable.
		default:
			s.violations.Add(1)
			fmt.Fprintf(os.Stderr, "plsh-soak: VIOLATION: match %d was never acknowledged to this client\n", m.ID)
		}
	}
	// Self-retrieval, by ID — never by distance: float32 normalization
	// puts a document's self-distance anywhere up to ~5e-4, so an ID test
	// is the only reliable one. One retry absorbs delete/search races.
	if !selfSeen {
		if _, live, _ := s.mirror.classify(qid); live {
			r, err := s.cl.Search(ctx, q, s.searchOpts()...)
			ok := false
			if err == nil {
				for _, m := range r.Matches {
					if m.ID == qid {
						ok = true
						break
					}
				}
			}
			if _, stillLive, _ := s.mirror.classify(qid); stillLive && !ok {
				s.violations.Add(1)
				fmt.Fprintf(os.Stderr, "plsh-soak: VIOLATION: document %d cannot find itself\n", qid)
			}
		}
	}
	// Recall over the snapshot's exhaustive in-radius set. Truncation
	// guard: WithK(256) bounds answers, so a pathological hub whose true
	// neighborhood approaches that bound is skipped rather than
	// miscounted.
	want := 0
	got := 0
	answered := make(map[uint64]bool, len(matches))
	for _, m := range matches {
		answered[m.ID] = true
	}
	for id, v := range oracle {
		if sparse.Dot(q, v) >= cosThr {
			want++
			if answered[id] {
				got++
			}
		}
	}
	if want > 128 {
		s.recallSkips.Add(1)
		return
	}
	if want > 0 {
		s.recallWant.Add(uint64(want))
		s.recallHits.Add(uint64(got))
	}
}

// chaosLoop alternates SIGKILL/restart cycles (exercising failover and
// journal recovery) with SIGSTOP/SIGCONT stalls (exercising the hedge:
// a frozen replica holds its sockets and answers nothing, so only the
// hedged second copy can win). Kills hold the write gate — see the
// package comment. Chaos stops early enough that the last victim is
// back and verified before the run ends.
func (s *soak) chaosLoop(ctx context.Context, harnessErr chan<- error) {
	rng := rand.New(rand.NewSource(int64(s.cfg.Seed) ^ 0xc4a05))
	deadline, _ := ctx.Deadline()
	kill := true // start with a kill; alternate with stalls
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(s.cfg.KillEvery):
		}
		// Leave room to restart and re-verify before the run ends.
		if time.Until(deadline) < s.cfg.Downtime+5*time.Second {
			return
		}
		victim := s.fleet.Nodes[rng.Intn(len(s.fleet.Nodes))]
		if kill {
			s.writeGate.Lock() // drains in-flight writes; blocks new ones
			fmt.Fprintf(os.Stderr, "plsh-soak: chaos: SIGKILL %s for %v\n", victim.Addr, s.cfg.Downtime)
			victim.Kill()
			s.kills.Add(1)
			//plshvet:ignore lockorder the gate must stay held for the whole downtime: any write while a member is down diverges the group's mirrors
			time.Sleep(s.cfg.Downtime)
			err := victim.Start()
			s.writeGate.Unlock()
			if err != nil {
				select {
				case harnessErr <- fmt.Errorf("restart %s: %w", victim.Addr, err):
				default:
				}
				return
			}
			fmt.Fprintf(os.Stderr, "plsh-soak: chaos: %s recovered and rejoined\n", victim.Addr)
		} else {
			fmt.Fprintf(os.Stderr, "plsh-soak: chaos: SIGSTOP %s for %v\n", victim.Addr, s.cfg.StallFor)
			if err := victim.Signal(syscall.SIGSTOP); err == nil {
				s.stalls.Add(1)
				time.Sleep(s.cfg.StallFor)
			}
			if err := victim.Signal(syscall.SIGCONT); err != nil {
				select {
				case harnessErr <- fmt.Errorf("SIGCONT %s: %w", victim.Addr, err):
				default:
				}
				return
			}
		}
		kill = !kill
	}
}

// finalAudit runs a quiescent verification sweep: with every node back
// up, a sample of live documents must all find themselves and answer
// soundly — the "sampled answers ≡ exhaustive oracle" exit criterion.
func (s *soak) finalAudit(ctx context.Context) {
	rng := rand.New(rand.NewSource(int64(s.cfg.Seed) ^ 0xa0d17))
	for i := 0; i < 8; i++ {
		id, q, ok := s.mirror.pick(rng)
		if !ok {
			return
		}
		oracle := s.mirror.snapshot()
		res, rep, err := s.cl.SearchBatch(ctx, []plsh.Vector{q}, s.searchOpts()...)
		if err != nil || !rep.Complete() {
			s.violations.Add(1)
			fmt.Fprintf(os.Stderr, "plsh-soak: VIOLATION: final audit search failed: err=%v\n", err)
			continue
		}
		s.verifySample(ctx, id, q, res[0].Matches, oracle)
	}
}

func (s *soak) buildReport(ctx context.Context, started time.Time) report {
	rep := report{
		Config:     s.cfg,
		StartedAt:  started.UTC(),
		WallSec:    time.Since(started).Seconds(),
		Kills:      int(s.kills.Load()),
		Stalls:     int(s.stalls.Load()),
		Inserted:   s.inserted.Load(),
		Deleted:    s.deleted.Load(),
		Searches:   s.searches.Load(),
		Queries:    s.queries.Load(),
		Merges:     s.merges.Load(),
		MergeSkips: s.mergeSkips.Load(),

		SearchP50NS:  s.searchHist.Quantile(0.50).Nanoseconds(),
		SearchP99NS:  s.searchHist.Quantile(0.99).Nanoseconds(),
		SearchP999NS: s.searchHist.Quantile(0.999).Nanoseconds(),
		InsertP50NS:  s.insertHist.Quantile(0.50).Nanoseconds(),
		InsertP99NS:  s.insertHist.Quantile(0.99).Nanoseconds(),
		DeleteP50NS:  s.deleteHist.Quantile(0.50).Nanoseconds(),
		DeleteP99NS:  s.deleteHist.Quantile(0.99).Nanoseconds(),

		SearchErrors: s.searchErrors.Load(),
		WriteErrors:  s.writeErrors.Load(),
		Violations:   s.violations.Load(),
		Samples:      s.samples.Load(),
		RecallNoise:  s.recallSkips.Load(),
		Coord:        s.cl.CoordStats(),
	}
	if w := s.recallWant.Load(); w > 0 {
		rep.Recall = float64(s.recallHits.Load()) / float64(w)
	}
	totalOps := rep.Searches + rep.SearchErrors + rep.Inserted + rep.Deleted + rep.WriteErrors
	if totalOps > 0 {
		rep.ErrorRate = float64(rep.SearchErrors+rep.WriteErrors+rep.Violations) / float64(totalOps)
	}
	if sts, err := s.cl.Stats(ctx); err == nil {
		for _, st := range sts {
			rep.NodeSearches += st.SearchesServed
			rep.NodeInserts += st.InsertsServed
			rep.NodeDeletes += st.DeletesServed
			rep.NodeMerges += st.Merges
			if st.WALFsyncP99NS > rep.WALFsyncP99NS {
				rep.WALFsyncP99NS = st.WALFsyncP99NS
			}
		}
	} else {
		rep.SLOFailures = append(rep.SLOFailures, fmt.Sprintf("final stats sweep failed: %v", err))
	}
	rep.SLOFailures = append(rep.SLOFailures, s.checkSLOs(rep)...)
	return rep
}

// checkSLOs is the exit-code policy: latency and error-rate SLOs, plus
// consistency between injected faults and the counters that should have
// observed them — a soak that killed replicas but saw zero failovers
// was not testing what it claims.
func (s *soak) checkSLOs(rep report) []string {
	var fails []string
	if rep.SearchP99NS > s.cfg.SLOSearchP99.Nanoseconds() {
		fails = append(fails, fmt.Sprintf("search p99 %v exceeds SLO %v",
			time.Duration(rep.SearchP99NS), s.cfg.SLOSearchP99))
	}
	if rep.ErrorRate > s.cfg.MaxErrorRate {
		fails = append(fails, fmt.Sprintf("error rate %.4f exceeds %.4f (search=%d write=%d violations=%d)",
			rep.ErrorRate, s.cfg.MaxErrorRate, rep.SearchErrors, rep.WriteErrors, rep.Violations))
	}
	if rep.Violations > 0 {
		fails = append(fails, fmt.Sprintf("%d correctness violations (any is too many)", rep.Violations))
	}
	if rep.Samples > 0 && rep.Recall < s.cfg.MinRecall {
		fails = append(fails, fmt.Sprintf("sampled recall %.3f below floor %.3f", rep.Recall, s.cfg.MinRecall))
	}
	if rep.Samples == 0 && rep.Searches > 0 {
		fails = append(fails, "no search batches were verified against the oracle")
	}
	if rep.Kills > 0 && rep.Coord.Failovers == 0 {
		fails = append(fails, fmt.Sprintf("%d replicas killed but the coordinator recorded zero failovers", rep.Kills))
	}
	if rep.Stalls > 0 && s.cfg.Hedge > 0 && rep.Coord.HedgesWon == 0 {
		fails = append(fails, fmt.Sprintf("%d replicas stalled with hedging on but zero hedges won", rep.Stalls))
	}
	if s.cfg.Fsync && rep.Inserted > 0 && rep.WALFsyncP99NS == 0 {
		fails = append(fails, "fsync enabled and documents inserted, but no node reports WAL fsync latency")
	}
	if rep.Inserted > 0 && rep.NodeInserts < rep.Inserted {
		fails = append(fails, fmt.Sprintf("nodes report %d inserts served, client acknowledged %d",
			rep.NodeInserts, rep.Inserted))
	}
	return fails
}

// printSummary emits the human summary plus go-bench formatted lines, so
// `plsh-soak ... | plsh-bench2json` yields a machine-readable snapshot
// with soak_search_p999_ns and soak_error_rate as top-level fields.
func printSummary(rep report) {
	fmt.Printf("soak: %.0fs wall, %d kills, %d stalls, %d inserted, %d deleted, %d search batches (%d queries), %d merges\n",
		rep.WallSec, rep.Kills, rep.Stalls, rep.Inserted, rep.Deleted, rep.Searches, rep.Queries, rep.Merges)
	fmt.Printf("soak: search p50=%v p99=%v p999=%v  insert p99=%v  delete p99=%v\n",
		time.Duration(rep.SearchP50NS), time.Duration(rep.SearchP99NS), time.Duration(rep.SearchP999NS),
		time.Duration(rep.InsertP99NS), time.Duration(rep.DeleteP99NS))
	fmt.Printf("soak: recall %.3f over %d samples, error rate %.5f, coord failovers=%d hedges won=%d, wal fsync p99=%v\n",
		rep.Recall, rep.Samples, rep.ErrorRate, rep.Coord.Failovers, rep.Coord.HedgesWon,
		time.Duration(rep.WALFsyncP99NS))
	if rep.Searches > 0 {
		fmt.Printf("BenchmarkSoakSearch %d %d ns/op %d soak-search-p99-ns %d soak-search-p999-ns\n",
			rep.Searches, rep.SearchP50NS, rep.SearchP99NS, rep.SearchP999NS)
	}
	if rep.Inserted > 0 {
		fmt.Printf("BenchmarkSoakInsert %d %d ns/op %d soak-insert-p99-ns\n",
			rep.Inserted, rep.InsertP50NS, rep.InsertP99NS)
	}
	fmt.Printf("BenchmarkSoakHealth 1 %.6f soak-error-rate %.4f soak-recall\n", rep.ErrorRate, rep.Recall)
}

func writeReport(path string, rep report) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
