// Command plsh-vet is the repository's custom static-analysis suite:
// eight analyzers that enforce the invariants the runtime tests can
// only catch after the fact — pooled-frame zeroing (poolzero),
// pooled-result release on every path (releasecheck), context threading
// (ctxcheck), append-only wire protocol with its lock-extension
// workflow (wireop), atomic-only snapshot access (atomicsnap),
// write-once published structs (snapfreeze), mutex acquisition order
// and no blocking under hot-path locks (lockorder), and
// journal-before-ack durability ordering (walorder). The framework
// also rejects stale //plshvet:ignore directives that no longer
// suppress anything. See internal/analysis/README.md.
//
// Two modes:
//
//	plsh-vet [-json] [-timing] [-report FILE] [packages]
//	    Standalone: load and check the named packages (default ./...)
//	    in the current module. Analyzers run in parallel; -timing
//	    prints per-analyzer wall time, -report also writes the text
//	    report (findings + timings) to FILE for CI artifacts. Exits 1
//	    if any finding survives its suppressions.
//
//	go vet -vettool=$(which plsh-vet) ./...
//	    Vet-tool: speaks the cmd/go unitchecker protocol (-V=full,
//	    -flags, and *.cfg units), so the suite composes with the
//	    standard vet drivers and the build cache.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
	"time"

	"plsh/internal/analysis/atomicsnap"
	"plsh/internal/analysis/ctxcheck"
	"plsh/internal/analysis/framework"
	"plsh/internal/analysis/lockorder"
	"plsh/internal/analysis/poolzero"
	"plsh/internal/analysis/releasecheck"
	"plsh/internal/analysis/snapfreeze"
	"plsh/internal/analysis/walorder"
	"plsh/internal/analysis/wireop"
)

func analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		atomicsnap.Analyzer,
		ctxcheck.Analyzer,
		lockorder.Analyzer,
		poolzero.Analyzer,
		releasecheck.Analyzer,
		snapfreeze.Analyzer,
		walorder.Analyzer,
		wireop.Analyzer,
	}
}

func main() {
	// The cmd/go vettool protocol probes the tool before handing it
	// work: -V=full must print a single line ending in a build ID
	// (cache key material), -flags must print the tool's flag schema as
	// JSON, and a lone *.cfg argument is one package unit to check.
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			fmt.Printf("plsh-vet version devel buildID=%s\n", buildID)
			return
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(unitCheck(args[0]))
		}
	}
	os.Exit(standalone(args))
}

// buildID feeds the go vet action cache: bump it when analyzer
// behavior changes so cached "clean" verdicts are invalidated.
// plshvet-2: lockorder/snapfreeze/walorder added, wireop enforces the
// lock-extension workflow, stale ignores rejected.
const buildID = "plshvet-2"

func standalone(args []string) int {
	fs := flag.NewFlagSet("plsh-vet", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	dir := fs.String("dir", ".", "directory to resolve patterns from")
	timing := fs.Bool("timing", false, "print per-analyzer wall time")
	report := fs.String("report", "", "also write the text report (findings + timings) to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := framework.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plsh-vet: %v\n", err)
		return 2
	}
	findings, timings, err := framework.RunTimed(pkgs, analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "plsh-vet: %v\n", err)
		return 2
	}
	var rep strings.Builder
	for _, f := range findings {
		fmt.Fprintln(&rep, f)
	}
	for _, tm := range timings {
		fmt.Fprintf(&rep, "timing\t%-14s %s\n", tm.Analyzer, tm.Elapsed.Round(time.Millisecond))
	}
	if *report != "" {
		if err := os.WriteFile(*report, []byte(rep.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "plsh-vet: %v\n", err)
			return 2
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "plsh-vet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
	}
	if *timing {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "timing\t%-14s %s\n", tm.Analyzer, tm.Elapsed.Round(time.Millisecond))
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "plsh-vet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// vetConfig is the unit description cmd/go writes for a vettool, per
// golang.org/x/tools/go/analysis/unitchecker.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitCheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plsh-vet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "plsh-vet: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// The driver requires the facts file to exist even though this
	// suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "plsh-vet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// The suite checks library paths only: test binaries and test
	// variants of a package (cmd/go presents them as "pkg.test",
	// "pkg [pkg.test]", and "pkg_test [pkg.test]" units) are skipped —
	// tests own their root contexts and may drop pooled batches, which
	// ReleaseResults documents as legal. The plain unit still covers
	// the package's library files.
	if strings.HasSuffix(cfg.ImportPath, ".test") || strings.Contains(cfg.ImportPath, " [") {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, gf := range cfg.GoFiles {
		if !strings.HasSuffix(gf, ".go") || strings.HasSuffix(gf, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "plsh-vet: %v\n", err)
			return 2
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "plsh-vet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &framework.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
	}
	findings, err := framework.Run([]*framework.Package{pkg}, analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "plsh-vet: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
