// Command plsh-gen emits a synthetic corpus as JSON lines, one document
// per line: {"idx":[...],"val":[...]} — unit-normalized IDF-weighted
// sparse vectors with the Twitter-like (or Wikipedia-like) statistics the
// benchmarks use. Pipe it into your own tooling or use it as a
// reproducible test fixture.
//
// Usage:
//
//	plsh-gen -n 100000 -d 500000 -kind twitter > tweets.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"plsh/internal/corpus"
)

type doc struct {
	Idx []uint32  `json:"idx"`
	Val []float32 `json:"val"`
}

func main() {
	n := flag.Int("n", 10000, "documents to generate")
	dim := flag.Int("d", 50000, "vocabulary size")
	kind := flag.String("kind", "twitter", "corpus preset: twitter | wikipedia")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	var cfg corpus.Config
	switch *kind {
	case "twitter":
		cfg = corpus.Twitter(*n, *dim, *seed)
	case "wikipedia":
		cfg = corpus.Wikipedia(*n, *dim, *seed)
	default:
		fmt.Fprintf(os.Stderr, "plsh-gen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	enc := json.NewEncoder(w)
	stream := corpus.NewStream(cfg)
	for i := 0; i < *n; i++ {
		v := stream.NextVector()
		if err := enc.Encode(doc{Idx: v.Idx, Val: v.Val}); err != nil {
			log.Fatalf("plsh-gen: %v", err)
		}
	}
	// A deferred Flush would swallow a short write and emit a silently
	// truncated corpus; fail loudly instead.
	if err := w.Flush(); err != nil {
		log.Fatalf("plsh-gen: flushing output: %v", err)
	}
}
