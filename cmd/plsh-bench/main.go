// Command plsh-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	plsh-bench -exp table2              # one experiment
//	plsh-bench -exp fig4 -exp fig5      # several
//	plsh-bench -all                     # everything (§8 end to end)
//	plsh-bench -list                    # show available experiments
//
// Scale flags (-n, -d, -k, -m, -q) trade fidelity to the paper's operating
// point (N=10.5M, D=500K, k=16, m=40, 1000 queries per node) against wall
// time; the defaults run each experiment in seconds-to-minutes on a laptop
// while preserving every comparison's shape. EXPERIMENTS.md records the
// paper-vs-measured numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"plsh/internal/expr"
)

type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var exps multiFlag
	flag.Var(&exps, "exp", "experiment to run (repeatable); see -list")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiments and exit")
	defaults := expr.Defaults()
	n := flag.Int("n", defaults.N, "dataset size (per node for multi-node experiments)")
	dim := flag.Int("d", defaults.Dim, "vocabulary size / dimensionality")
	k := flag.Int("k", defaults.K, "bits per hash table (even)")
	m := flag.Int("m", defaults.M, "number of half-width hash functions (L = m(m-1)/2)")
	q := flag.Int("q", defaults.Queries, "query-set size")
	radius := flag.Float64("r", defaults.Radius, "R-near-neighbor radius (radians)")
	workers := flag.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", defaults.Seed, "random seed")
	flag.Parse()

	if *list {
		for _, r := range expr.All() {
			fmt.Printf("  %-10s %s\n", r.Name, r.Desc)
		}
		return
	}

	opts := expr.Options{
		N: *n, Dim: *dim, K: *k, M: *m,
		Queries: *q, Radius: *radius, Workers: *workers, Seed: *seed,
	}

	var runners []expr.Runner
	if *all {
		runners = expr.All()
	} else {
		for _, name := range exps {
			r, ok := expr.Lookup(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "plsh-bench: unknown experiment %q (see -list)\n", name)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}
	if len(runners) == 0 {
		fmt.Fprintln(os.Stderr, "plsh-bench: nothing to run; use -exp NAME, -all, or -list")
		os.Exit(2)
	}

	for _, r := range runners {
		t0 := time.Now()
		if err := r.Run(opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "plsh-bench: %s: %v\n", r.Name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", r.Name, time.Since(t0).Round(time.Millisecond))
	}
}
