// plsh-bench2json converts `go test -bench` output on stdin into the
// machine-readable benchmarks/latest.json snapshot written by
// scripts/bench.sh, so benchmark trajectories can be diffed and plotted
// instead of eyeballed.
//
// Every benchmark line becomes one entry with all its metrics (standard
// ns/op, B/op, allocs/op plus any b.ReportMetric custom units). Headline
// metrics are also surfaced as top-level fields: the
// query-latency-during-merge number from the non-blocking merge pipeline
// (BenchmarkQueryDuringMerge), the durability subsystem's snapshot save
// throughput (BenchmarkSave) and journal replay rate (BenchmarkRecover),
// the unified Search path's bounded-query latency with and without a
// request-scoped radius override (BenchmarkSearchTopK), the replica
// layer's broadcast latency — single-copy vs R=2 vs R=2 hedged
// (BenchmarkSearchReplicated) — and the placement layer's routed-vs-
// scatter per-query cost at 4 and 16 replica groups
// (BenchmarkSearchRouted). The soak harness's summary lines
// (cmd/plsh-soak via scripts/soak.sh) surface the same way: the
// fault-injected search tail (soak_search_p999_ns), the run's combined
// error rate (soak_error_rate), and sampled recall (soak_recall).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type snapshot struct {
	GeneratedAt time.Time   `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	Benchmarks  []benchmark `json:"benchmarks"`
	// QueryDuringMergeNS is BenchmarkQueryDuringMerge's
	// ns/query-during-merge metric, or 0 when that benchmark was not in
	// the run's pattern.
	QueryDuringMergeNS float64 `json:"query_latency_during_merge_ns"`
	// SnapshotSaveMBps is BenchmarkSave's snapshot-MB/s metric
	// (serialization throughput of a node checkpoint), or 0 when absent.
	SnapshotSaveMBps float64 `json:"snapshot_save_mb_per_s"`
	// WALReplayDocsPerS is BenchmarkRecover's replay-docs/s metric
	// (journal-only crash-recovery rate), or 0 when absent.
	WALReplayDocsPerS float64 `json:"wal_replay_docs_per_s"`
	// SearchTopKNS is BenchmarkSearchTopK/construction's ns/search-topk
	// metric (the unified Search path's bounded query shape at the
	// store's own radius), or 0 when absent. SearchTopKOverrideNS is the
	// same query under a request-scoped WithRadius override — the two
	// should track each other, pricing the per-request parameter at a
	// struct copy rather than a rebuild.
	SearchTopKNS         float64 `json:"search_topk_ns"`
	SearchTopKOverrideNS float64 `json:"search_topk_override_radius_ns"`
	// SearchReplicated*NS are BenchmarkSearchReplicated's per-query
	// ns/replicated-search metrics: the broadcast path through a
	// single-copy cluster, an R=2 replica-group cluster, and an R=2
	// cluster with the tail hedge armed. R1 and R2 should track each
	// other (one member answers per group either way), and the hedged
	// number should track R2 (the hedge timer almost never fires on a
	// healthy cluster); 0 when absent from the run's pattern.
	SearchReplicatedR1NS     float64 `json:"search_replicated_r1_ns"`
	SearchReplicatedR2NS     float64 `json:"search_replicated_r2_ns"`
	SearchReplicatedHedgedNS float64 `json:"search_replicated_r2_hedged_ns"`
	// SearchRouted*NS are BenchmarkSearchRouted's per-query
	// ns/routed-search metrics over identical corpora: the scatter
	// broadcast vs hash-partitioned placement with routed probing, at 4
	// and 16 replica groups. The partitioned numbers should sit well
	// under their scatter twins — that margin is the point of routing —
	// and the gap should widen with the group count, since scatter pays
	// every group on every query while the routed probe set tracks the
	// recall target. 0 when absent from the run's pattern.
	SearchRoutedScatterG4NS  float64 `json:"search_routed_scatter_g4_ns"`
	SearchRoutedPartG4NS     float64 `json:"search_routed_part_g4_ns"`
	SearchRoutedScatterG16NS float64 `json:"search_routed_scatter_g16_ns"`
	SearchRoutedPartG16NS    float64 `json:"search_routed_part_g16_ns"`
	// Allocation headlines for the zero-allocation hot path: B/op and
	// allocs/op of the steady-state query benchmarks (the whole batch, not
	// per query). Fig5Query/Arena prices the core engine's append API
	// with a held destination; SearchTopK the public single-query Search;
	// SearchReplicated/replicas=1 the full broadcast-and-merge path.
	// 0 when the benchmark was absent from the run's pattern.
	Fig5QueryArenaBytes      float64 `json:"fig5_query_arena_bytes_per_op"`
	Fig5QueryArenaAllocs     float64 `json:"fig5_query_arena_allocs_per_op"`
	SearchTopKBytes          float64 `json:"search_topk_bytes_per_op"`
	SearchTopKAllocs         float64 `json:"search_topk_allocs_per_op"`
	SearchReplicatedR1Bytes  float64 `json:"search_replicated_r1_bytes_per_op"`
	SearchReplicatedR1Allocs float64 `json:"search_replicated_r1_allocs_per_op"`
	// SearchRouted/…-g16 allocation twins: routed probing must not buy
	// its latency win with per-query garbage, so the partitioned arm's
	// B/op and allocs/op are tracked against scatter's at the widest
	// fan-out. Per batch, not per query; 0 when absent.
	SearchRoutedScatterG16Bytes  float64 `json:"search_routed_scatter_g16_bytes_per_op"`
	SearchRoutedScatterG16Allocs float64 `json:"search_routed_scatter_g16_allocs_per_op"`
	SearchRoutedPartG16Bytes     float64 `json:"search_routed_part_g16_bytes_per_op"`
	SearchRoutedPartG16Allocs    float64 `json:"search_routed_part_g16_allocs_per_op"`
	// Soak headlines from cmd/plsh-soak's bench-formatted summary lines
	// (scripts/soak.sh pipes them here): the mixed-load search tail under
	// fault injection and the run's combined failed-ops + correctness-
	// violation rate. 0 when the input was a plain benchmark run.
	SoakSearchP999NS float64 `json:"soak_search_p999_ns"`
	SoakErrorRate    float64 `json:"soak_error_rate"`
	SoakRecall       float64 `json:"soak_recall"`
}

func main() {
	snap := snapshot{
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		Benchmarks:  []benchmark{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name-N  iterations  value unit  [value unit ...]
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := benchmark{
			Name:       strings.TrimPrefix(trimProcs(fields[0]), "Benchmark"),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		if len(b.Metrics) == 0 {
			continue
		}
		if v, ok := b.Metrics["ns/query-during-merge"]; ok {
			snap.QueryDuringMergeNS = v
		}
		if v, ok := b.Metrics["snapshot-MB/s"]; ok {
			snap.SnapshotSaveMBps = v
		}
		if v, ok := b.Metrics["replay-docs/s"]; ok {
			snap.WALReplayDocsPerS = v
		}
		if v, ok := b.Metrics["ns/search-topk"]; ok {
			switch {
			case strings.HasSuffix(b.Name, "/construction"):
				snap.SearchTopKNS = v
			case strings.HasSuffix(b.Name, "/override"):
				snap.SearchTopKOverrideNS = v
			}
		}
		if v, ok := b.Metrics["ns/replicated-search"]; ok {
			switch {
			case strings.HasSuffix(b.Name, "/replicas=1"):
				snap.SearchReplicatedR1NS = v
			case strings.HasSuffix(b.Name, "/replicas=2"):
				snap.SearchReplicatedR2NS = v
			case strings.HasSuffix(b.Name, "/replicas=2-hedged"):
				snap.SearchReplicatedHedgedNS = v
			}
		}
		if v, ok := b.Metrics["soak-search-p999-ns"]; ok {
			snap.SoakSearchP999NS = v
		}
		if v, ok := b.Metrics["soak-error-rate"]; ok {
			snap.SoakErrorRate = v
		}
		if v, ok := b.Metrics["soak-recall"]; ok {
			snap.SoakRecall = v
		}
		if v, ok := b.Metrics["ns/routed-search"]; ok {
			switch {
			case strings.HasSuffix(b.Name, "/scatter-g4"):
				snap.SearchRoutedScatterG4NS = v
			case strings.HasSuffix(b.Name, "/part-g4"):
				snap.SearchRoutedPartG4NS = v
			case strings.HasSuffix(b.Name, "/scatter-g16"):
				snap.SearchRoutedScatterG16NS = v
			case strings.HasSuffix(b.Name, "/part-g16"):
				snap.SearchRoutedPartG16NS = v
			}
		}
		switch b.Name {
		case "Fig5Query/Arena":
			snap.Fig5QueryArenaBytes = b.Metrics["B/op"]
			snap.Fig5QueryArenaAllocs = b.Metrics["allocs/op"]
		case "SearchTopK/construction":
			snap.SearchTopKBytes = b.Metrics["B/op"]
			snap.SearchTopKAllocs = b.Metrics["allocs/op"]
		case "SearchReplicated/replicas=1":
			snap.SearchReplicatedR1Bytes = b.Metrics["B/op"]
			snap.SearchReplicatedR1Allocs = b.Metrics["allocs/op"]
		case "SearchRouted/scatter-g16":
			snap.SearchRoutedScatterG16Bytes = b.Metrics["B/op"]
			snap.SearchRoutedScatterG16Allocs = b.Metrics["allocs/op"]
		case "SearchRouted/part-g16":
			snap.SearchRoutedPartG16Bytes = b.Metrics["B/op"]
			snap.SearchRoutedPartG16Allocs = b.Metrics["allocs/op"]
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "plsh-bench2json: read: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintf(os.Stderr, "plsh-bench2json: encode: %v\n", err)
		os.Exit(1)
	}
}

// trimProcs drops the trailing -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkFoo-8" → "BenchmarkFoo"), keeping sub-
// benchmark paths intact.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
