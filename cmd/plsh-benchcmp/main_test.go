package main

import (
	"strings"
	"testing"
)

func TestCompareFlagsRegression(t *testing.T) {
	base := map[string]float64{"query_ns": 100, "save_mb_per_s": 50}
	latest := map[string]float64{"query_ns": 110, "save_mb_per_s": 50}
	lines, failed := compare(base, latest, 5)
	if !failed {
		t.Fatal("10% latency regression above a 5% gate must fail")
	}
	if len(lines) != 2 || !strings.Contains(lines[0], "REGRESSION") {
		t.Errorf("bad report: %q", lines)
	}
}

func TestCompareThroughputDirection(t *testing.T) {
	base := map[string]float64{"save_mb_per_s": 100}
	for latest, wantFail := range map[float64]bool{90: true, 110: false} {
		_, failed := compare(base, map[string]float64{"save_mb_per_s": latest}, 5)
		if failed != wantFail {
			t.Errorf("throughput 100 -> %.0f: failed=%v, want %v", latest, failed, wantFail)
		}
	}
}

func TestCompareSkipsNarrowedRun(t *testing.T) {
	// bench2json emits every schema field; zero means the benchmark was
	// not in this run's pattern, which must not fail the gate.
	base := map[string]float64{"query_ns": 100, "recover_docs_per_s": 1000}
	latest := map[string]float64{"query_ns": 100, "recover_docs_per_s": 0}
	lines, failed := compare(base, latest, 5)
	if failed {
		t.Fatalf("narrowed run failed the gate: %q", lines)
	}
	if len(lines) != 1 {
		t.Errorf("skipped metric still reported: %q", lines)
	}
}

// TestCompareDisappearedMetricFails pins the hard-failure this gate
// once lacked: a baseline metric whose key is absent from latest left
// the snapshot schema, and skipping it would un-track it silently.
func TestCompareDisappearedMetricFails(t *testing.T) {
	base := map[string]float64{"query_ns": 100, "search_topk_ns": 200}
	latest := map[string]float64{"query_ns": 100}
	lines, failed := compare(base, latest, 5)
	if !failed {
		t.Fatal("metric missing from latest's keys must fail the gate")
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "search_topk_ns") && strings.Contains(l, "DISAPPEARED") {
			found = true
		}
	}
	if !found {
		t.Errorf("no DISAPPEARED line for search_topk_ns: %q", lines)
	}
	// A zero baseline entry vanishing is not a disappearance: it was
	// never tracked.
	_, failed = compare(map[string]float64{"dead_ns": 0}, map[string]float64{}, 5)
	if failed {
		t.Error("zero baseline metric missing from latest must not fail")
	}
}
