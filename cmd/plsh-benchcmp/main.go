// plsh-benchcmp is the benchmark regression gate: it compares the
// headline metrics of benchmarks/latest.json against the promoted
// benchmarks/baseline.json and exits nonzero when any tracked metric —
// latency (ns), allocation bytes (B/op), or allocation count (allocs/op)
// — regressed by more than BENCH_MAX_REGRESSION_PCT percent (default 5).
//
// Tracked metrics are the snapshot's top-level scalar fields, the ones
// plsh-bench2json promotes out of the raw benchmark entries. Direction is
// inferred from the field name: throughput fields (*_mb_per_s,
// *_docs_per_s) regress by going down, everything else (latency in ns,
// bytes, allocation counts) by going up. A metric that is zero on either
// side is skipped: bench2json emits every schema field on every run, so
// zero means the benchmark was not in the run's pattern and a narrowed
// run gates only what it ran. A baseline metric whose KEY is missing
// from latest is different — the field left the snapshot schema, so the
// gate would silently stop tracking it forever. That is a hard failure.
//
//	plsh-benchcmp [baseline.json latest.json]
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	basePath, latestPath := "benchmarks/baseline.json", "benchmarks/latest.json"
	if len(os.Args) == 3 {
		basePath, latestPath = os.Args[1], os.Args[2]
	} else if len(os.Args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: plsh-benchcmp [baseline.json latest.json]")
		os.Exit(2)
	}

	maxPct := 5.0
	if env := os.Getenv("BENCH_MAX_REGRESSION_PCT"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil || v < 0 {
			fmt.Fprintf(os.Stderr, "plsh-benchcmp: bad BENCH_MAX_REGRESSION_PCT %q\n", env)
			os.Exit(2)
		}
		maxPct = v
	}

	base, err := loadMetrics(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plsh-benchcmp: %v\n", err)
		os.Exit(2)
	}
	latest, err := loadMetrics(latestPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plsh-benchcmp: %v\n", err)
		os.Exit(2)
	}

	lines, failed := compare(base, latest, maxPct)
	for _, line := range lines {
		fmt.Println(line)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "plsh-benchcmp: regression beyond %.1f%% (set BENCH_MAX_REGRESSION_PCT to adjust)\n", maxPct)
		os.Exit(1)
	}
}

// compare gates latest against base, returning the report lines and
// whether the gate failed. A nonzero baseline metric missing from
// latest's keys is a hard failure: the field left the snapshot schema,
// and skipping it would un-track the metric silently.
func compare(base, latest map[string]float64, maxPct float64) (lines []string, failed bool) {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, k := range keys {
		b := base[k]
		l, tracked := latest[k]
		if !tracked && b != 0 {
			lines = append(lines, fmt.Sprintf("%-44s %14.1f -> %14s  %8s  DISAPPEARED", k, b, "(gone)", ""))
			failed = true
			continue
		}
		if b == 0 || l == 0 {
			continue // not in this run's benchmark pattern
		}
		var pct float64 // positive = regression
		if higherIsBetter(k) {
			pct = (b - l) / b * 100
		} else {
			pct = (l - b) / b * 100
		}
		status := "ok"
		if pct > maxPct {
			status = "REGRESSION"
			failed = true
		}
		lines = append(lines, fmt.Sprintf("%-44s %14.1f -> %14.1f  %+7.1f%%  %s", k, b, l, pct, status))
	}
	return lines, failed
}

// loadMetrics returns the snapshot's top-level scalar metrics: every
// numeric field except bookkeeping like iterations.
func loadMetrics(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for k, v := range top {
		var f float64
		if err := json.Unmarshal(v, &f); err == nil {
			out[k] = f
		}
	}
	return out, nil
}

func higherIsBetter(field string) bool {
	return strings.HasSuffix(field, "_mb_per_s") || strings.HasSuffix(field, "_docs_per_s")
}
