// Command plsh-node serves one PLSH node over TCP, the per-machine unit of
// a multi-node deployment (the paper's 100-node cluster, §5.3). A
// coordinator connects with plsh.DialCluster.
//
// Usage:
//
//	plsh-node -addr :7070 -dim 500000 -k 16 -m 16 -capacity 1000000
//
// All state is in memory; terminating the process discards it, exactly as
// retiring the node would. SIGINT/SIGTERM shut the server down cleanly:
// the listener and every open connection close, failing in-flight
// coordinator calls promptly instead of leaving them hanging.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os/signal"
	"syscall"

	"plsh/internal/core"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/transport"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	dim := flag.Int("dim", 500000, "vector-space dimensionality")
	k := flag.Int("k", 16, "bits per hash table (even)")
	m := flag.Int("m", 16, "half-width hash functions (L = m(m-1)/2)")
	capacity := flag.Int("capacity", 1<<20, "maximum documents held")
	eta := flag.Float64("eta", 0.1, "delta fraction before automatic merge")
	radius := flag.Float64("r", 0.9, "query radius (radians)")
	workers := flag.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "hash-family seed (must match across coordinated nodes only if you rely on reproducibility)")
	flag.Parse()

	build := core.Defaults()
	build.Workers = *workers
	query := core.QueryDefaults()
	query.Radius = *radius
	query.Workers = *workers
	n, err := node.New(node.Config{
		Params:        lshhash.Params{Dim: *dim, K: *k, M: *m, Seed: *seed},
		Capacity:      *capacity,
		DeltaFraction: *eta,
		AutoMerge:     true,
		Build:         build,
		Query:         query,
	})
	if err != nil {
		log.Fatalf("plsh-node: %v", err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("plsh-node: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("plsh-node: serving on %s (dim=%d k=%d m=%d L=%d capacity=%d)",
		l.Addr(), *dim, *k, *m, (*m)*(*m-1)/2, *capacity)
	onError := func(err error) { log.Printf("plsh-node: %v", err) }
	if err := transport.Serve(ctx, l, transport.NewLocal(n), onError); err != nil {
		log.Fatalf("plsh-node: %v", err)
	}
	log.Printf("plsh-node: shut down")
}
