// Command plsh-node serves one PLSH node over TCP, the per-machine unit of
// a multi-node deployment (the paper's 100-node cluster, §5.3). A
// coordinator connects with plsh.DialCluster and drives the unified
// Search surface: the versioned opSearch wire op carries each request's
// radius, top-k bound, and candidate budget to this node, and opDoc
// fetches stored vectors by id. The -r flag is therefore only the
// node-side default radius — requests override it per query.
//
// Usage:
//
//	plsh-node -addr :7070 -dim 500000 -k 16 -m 16 -capacity 1000000 -data /var/lib/plsh
//
// Without -data all state is in memory and terminating the process
// discards it, exactly as retiring the node would. With -data the node is
// durable: on boot it recovers from the directory's snapshot and journal
// (every write acknowledged before a crash — even kill -9 — is queryable
// again), every acknowledged write is journaled before the RPC returns,
// and background merges checkpoint snapshots. SIGINT/SIGTERM shut the
// server down gracefully: intake stops at once (listener closed, no new
// requests decoded), requests already in flight get up to -drain to
// finish and answer — so an acknowledged write is never torn mid-journal
// by its own server's shutdown — and a final checkpoint is then written
// over the quiescent node so the next boot skips journal replay entirely.
// -drain 0 restores the abrupt legacy shutdown (in-flight calls fail
// immediately).
//
// Replicated deployments need nothing node-side: replication is purely a
// coordinator construct. Launch R identical processes per replica group —
// same -dim/-k/-m/-capacity and, critically, the same -seed, so the
// mirrors draw identical hyperplanes and answer identically — each with
// its own -data directory, list each group's members adjacently in the
// address list, and build the coordinator with plsh.WithReplicas(R). The
// coordinator mirrors every insert onto the whole group and fails
// searches over between members, so one process per group can be
// SIGKILLed without losing answers; restart it with the same -data and
// it recovers its journal and rejoins automatically (the coordinator
// re-dials on its next call).
//
// Partitioned placement is likewise coordinator-only: build the
// coordinator with plsh.WithPartitioned, passing a Config that restates
// the fleet's -dim, -k, -m, and -seed (the routing hyperplanes are
// derived from them, so the coordinator and every future coordinator of
// this fleet must agree). Inserts then land on the group chosen by each
// document's routing signature and searches probe only the groups that
// can hold their in-radius neighbors — nodes just see fewer search
// frames. Note that partitioned clusters have no rolling insert window:
// documents live where their signature says, so size -capacity for the
// whole stream.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os/signal"
	"syscall"
	"time"

	"plsh/internal/core"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/transport"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	dim := flag.Int("dim", 500000, "vector-space dimensionality")
	k := flag.Int("k", 16, "bits per hash table (even)")
	m := flag.Int("m", 16, "half-width hash functions (L = m(m-1)/2)")
	capacity := flag.Int("capacity", 1<<20, "maximum documents held")
	eta := flag.Float64("eta", 0.1, "delta fraction before automatic merge")
	radius := flag.Float64("r", 0.9, "default query radius in radians (requests override per query via search options)")
	workers := flag.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "hash-family seed (must match across coordinated nodes only if you rely on reproducibility)")
	data := flag.String("data", "", "data directory: recover on boot, journal writes, checkpoint on merge and shutdown (empty = in-memory only)")
	fsync := flag.Bool("fsync", false, "fsync every journal append (survive machine crash, not just process death)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown window for in-flight requests on SIGINT/SIGTERM (0 = abort them immediately)")
	flag.Parse()

	build := core.Defaults()
	build.Workers = *workers
	query := core.QueryDefaults()
	query.Radius = *radius
	query.Workers = *workers
	n, err := node.New(node.Config{
		Params:        lshhash.Params{Dim: *dim, K: *k, M: *m, Seed: *seed},
		Capacity:      *capacity,
		DeltaFraction: *eta,
		AutoMerge:     true,
		Build:         build,
		Query:         query,
		Dir:           *data,
		SyncWrites:    *fsync,
	})
	if err != nil {
		log.Fatalf("plsh-node: %v", err)
	}
	if *data != "" {
		log.Printf("plsh-node: recovered %d documents (%d static) from %s",
			n.Len(), n.StaticLen(), *data)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("plsh-node: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("plsh-node: serving on %s (dim=%d k=%d m=%d L=%d capacity=%d)",
		l.Addr(), *dim, *k, *m, (*m)*(*m-1)/2, *capacity)
	onError := func(err error) { log.Printf("plsh-node: %v", err) }
	opts := transport.ServeOptions{Drain: *drain, OnError: onError}
	if err := transport.ServeWithOptions(ctx, l, transport.NewLocal(n), opts); err != nil {
		log.Fatalf("plsh-node: %v", err)
	}
	if *data != "" {
		// Serve has drained every handler, so the node is quiescent: the
		// shutdown checkpoint makes the next boot a pure snapshot load.
		if err := n.Save(context.Background()); err != nil {
			log.Printf("plsh-node: shutdown checkpoint: %v", err)
		}
		if err := n.Close(); err != nil {
			log.Printf("plsh-node: close journal: %v", err)
		}
	}
	log.Printf("plsh-node: shut down")
}
