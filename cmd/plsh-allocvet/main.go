// Command plsh-allocvet gates heap allocations on the query hot path.
//
// It builds the module with -gcflags=-m, attributes every "escapes to
// heap" / "moved to heap" diagnostic to its enclosing function, and
// compares per-function counts against the checked-in budget file
// (default internal/analysis/allocgate/budget.txt). A budgeted function
// that gained an escape fails the gate; a stale budget entry fails too.
//
//	plsh-allocvet [-dir .] [-budget FILE] [-report FILE]
//	    Run the gate. Exit 1 on findings, 2 on error.
//
//	plsh-allocvet -update [-dir .] [-budget FILE]
//	    Rewrite the budget's counts to the current measurements
//	    (ratchet improvements in, drop stale entries).
//
// See internal/analysis/allocgate for the rules and rationale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"plsh/internal/analysis/allocgate"
)

func main() {
	os.Exit(run())
}

func run() int {
	dir := flag.String("dir", ".", "module directory to gate")
	budget := flag.String("budget", "internal/analysis/allocgate/budget.txt", "budget file (relative paths resolve from -dir)")
	update := flag.Bool("update", false, "rewrite the budget's counts to current measurements")
	report := flag.String("report", "", "also write the text report to this file")
	flag.Parse()

	if *update {
		if err := allocgate.Update(*dir, *budget); err != nil {
			fmt.Fprintf(os.Stderr, "plsh-allocvet: %v\n", err)
			return 2
		}
		fmt.Printf("plsh-allocvet: updated %s\n", *budget)
		return 0
	}

	res, err := allocgate.Run(*dir, *budget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plsh-allocvet: %v\n", err)
		return 2
	}
	var out strings.Builder
	for _, f := range res.Findings {
		fmt.Fprintln(&out, f)
	}
	for _, f := range res.Improvements {
		fmt.Fprintf(&out, "%s: improved to %d heap escapes (budget %d); consider -update to ratchet\n", f.Func, f.Got, f.Budget)
	}
	if *report != "" {
		text := out.String()
		if text == "" {
			text = "plsh-allocvet: all budgeted functions within their escape budgets\n"
		}
		if err := os.WriteFile(*report, []byte(text), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "plsh-allocvet: %v\n", err)
			return 2
		}
	}
	fmt.Fprint(os.Stderr, out.String())
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "plsh-allocvet: %d finding(s)\n", len(res.Findings))
		return 1
	}
	return 0
}
