// Streaming: a scaled-down version of the paper's headline workload —
// continuous tweet arrival with concurrent similarity queries. Inserts are
// batched into the delta table and background merges fire automatically at
// the η threshold; unlike the paper, which buffers queries until a merge
// completes, queries here run lock-free against copy-on-write snapshots,
// so the latency samples taken throughout stay flat even while rebuilds
// are in flight. Store.Flush is the barrier that settles the last
// background merge before final stats are read; MergeInFlight can be
// observed mid-run via Stats.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"plsh"
)

const (
	capacity  = 30000
	batchSize = 500 // scaled stand-in for the paper's 100K-tweet chunks
	vocabSize = 30000
)

func main() {
	ctx := context.Background()
	store, err := plsh.NewStore(plsh.Config{
		Dim:           vocabSize,
		K:             12,
		M:             10,
		Capacity:      capacity,
		DeltaFraction: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The "firehose": synthetic tweets with retweet-style near-duplicates.
	stream := plsh.SyntheticTweets(capacity, vocabSize, 7)
	queries := stream[:64] // recent tweets double as queries

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Query load: sample latency while inserts run.
	var latMu sync.Mutex
	var latencies []time.Duration
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			if _, _, err := store.SearchBatch(ctx, queries); err != nil {
				log.Fatal(err)
			}
			latMu.Lock()
			latencies = append(latencies, time.Since(t0))
			latMu.Unlock()
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Ingest the stream in batches.
	ingestStart := time.Now()
	for off := 0; off+batchSize <= len(stream); off += batchSize {
		if _, err := store.Insert(ctx, stream[off:off+batchSize]); err != nil {
			log.Fatalf("insert at %d: %v", off, err)
		}
	}
	ingestDur := time.Since(ingestStart)
	close(stop)
	wg.Wait()

	// Merges run in the background; wait out any still in flight so the
	// stats below are settled. (Queries never needed this barrier — they
	// read consistent snapshots throughout.)
	if err := store.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	st := store.StatsNow()
	fmt.Printf("ingested %d docs in %v (%.0f docs/s)\n",
		store.Len(), ingestDur.Round(time.Millisecond),
		float64(store.Len())/ingestDur.Seconds())
	fmt.Printf("merges: %d (last %v); insert time %v; merge time %v\n",
		st.Merges, st.LastMergeDur.Round(time.Millisecond),
		time.Duration(st.InsertNS).Round(time.Millisecond),
		time.Duration(st.TotalMergeNS).Round(time.Millisecond))
	// The paper's ≈2% maintenance overhead is relative to real-time tweet
	// arrival (4600/s per insert node), not to a maximally fast replay:
	// compare maintenance time against how long this many tweets take to
	// arrive at one node of an M=4 window at Twitter rates.
	arrival := float64(store.Len()) / (400e6 / 86400 / 4)
	maintenance := time.Duration(st.InsertNS + st.TotalMergeNS).Seconds()
	fmt.Printf("maintenance vs real-time arrival (%.1f s of stream): %.2f%% (paper: ≈2%%)\n",
		arrival, 100*maintenance/arrival)

	latMu.Lock()
	defer latMu.Unlock()
	if len(latencies) > 0 {
		var mn, mx, sum time.Duration
		mn = latencies[0]
		for _, l := range latencies {
			if l < mn {
				mn = l
			}
			if l > mx {
				mx = l
			}
			sum += l
		}
		fmt.Printf("query-batch latency under streaming: min %v avg %v max %v (%d samples)\n",
			mn.Round(time.Microsecond), (sum / time.Duration(len(latencies))).Round(time.Microsecond),
			mx.Round(time.Microsecond), len(latencies))
		fmt.Println("(max/min stays small: merges rebuild in the background, so no sample")
		fmt.Println(" pays a merge-length stall — the paper instead buffers queries during")
		fmt.Println(" merges and bounds steady-state streaming slowdown at 1.5x)")
	}
}
