// Quickstart: index a corpus of short documents and answer R-near-neighbor
// queries — the minimal end-to-end use of the plsh public API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"plsh"
)

func main() {
	// Every plsh operation takes a context; a deadline bounds how long a
	// call may run and cancellation aborts it early.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Encode a small text corpus as IDF-weighted unit vectors. For real
	// data you would Observe a large sample first; the encoder mirrors
	// the paper's pipeline (lowercase, strip non-alphabet, drop stop
	// words, IDF weights, unit normalization).
	enc := plsh.NewEncoder(1 << 16)
	corpus := []string{
		"earthquake strikes the coastal city at dawn",
		"coastal city rocked by earthquake at dawn today",
		"stock markets rally after strong earnings reports",
		"earnings reports push stock markets to record highs",
		"local team clinches the championship in overtime",
		"overtime thriller sees local team win championship",
		"new espresso bar opens downtown with latte art",
		"gardening tips for a thriving spring vegetable patch",
	}
	for _, d := range corpus {
		enc.Observe(d)
	}

	// Build the store. Dim must cover the encoder's space; K/M default to
	// the paper's table geometry. Radius 1.2 rad suits tiny corpora where
	// even paraphrases share only a few words.
	store, err := plsh.NewStore(plsh.Config{
		Dim:      1 << 16,
		K:        8,
		M:        8,
		Radius:   1.2,
		Capacity: 1000,
	})
	if err != nil {
		log.Fatal(err)
	}

	var docs []plsh.Vector
	for _, d := range corpus {
		v, ok := enc.Encode(d)
		if !ok {
			log.Fatalf("document %q encoded to zero", d)
		}
		docs = append(docs, v)
	}
	ids, err := store.Insert(ctx, docs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d documents\n", len(ids))

	// Query with fresh text. Search is the one query call: options scope
	// radius, top-k bounds, and latency policy to the request, and every
	// match carries a uint64 global ID (a Store is node 0).
	for _, qText := range []string{
		"earthquake hits city on the coast",
		"markets rally on earnings",
		"team wins the championship",
	} {
		q, ok := enc.Encode(qText)
		if !ok {
			log.Fatalf("query %q has no known words", qText)
		}
		fmt.Printf("\nquery: %q\n", qText)
		res, err := store.Search(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range res.Matches {
			fmt.Printf("  %.3f rad  %q\n", m.Dist, corpus[m.ID])
		}

		// WithK bounds the answer to the best match(es) within the
		// radius, nearest first; WithRadius would widen or narrow the
		// radius for this request alone.
		best, err := store.Search(ctx, q, plsh.WithK(1))
		if err != nil {
			log.Fatal(err)
		}
		if len(best.Matches) > 0 {
			m := best.Matches[0]
			fmt.Printf("  best: %q (%.3f rad)\n", corpus[m.ID], m.Dist)
		}
	}
}
