// Durable quickstart: a Store that survives restarts. The store journals
// every acknowledged write before acknowledging it and checkpoints
// snapshots as it merges, so reopening the same directory recovers every
// document — whether the previous process exited cleanly or was killed.
//
// Run it twice:
//
//	go run ./examples/durable          # first run: indexes and saves
//	go run ./examples/durable          # second run: recovers, no re-index
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"plsh"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	dir := filepath.Join(os.TempDir(), "plsh-durable-example")
	cfg := plsh.Config{
		Dim:      1 << 16,
		K:        8,
		M:        8,
		Radius:   1.2,
		Capacity: 1000,
	}

	// Open recovers whatever the directory holds: the latest snapshot plus
	// the journal tail. A fresh directory opens an empty durable store.
	store, err := plsh.Open(ctx, dir, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	corpus := []string{
		"earthquake strikes the coastal city at dawn",
		"coastal city rocked by earthquake at dawn today",
		"stock markets rally after strong earnings reports",
		"local team clinches the championship in overtime",
		"new espresso bar opens downtown with latte art",
	}
	enc := plsh.NewEncoder(1 << 16)
	for _, d := range corpus {
		enc.Observe(d)
	}

	if store.Len() > 0 {
		fmt.Printf("recovered %d documents from %s — no re-indexing\n", store.Len(), dir)
	} else {
		fmt.Printf("fresh store in %s — indexing\n", dir)
		var docs []plsh.Vector
		for _, d := range corpus {
			v, ok := enc.Encode(d)
			if !ok {
				log.Fatalf("document %q encoded to zero", d)
			}
			docs = append(docs, v)
		}
		// Once Insert returns, the batch is journaled: even kill -9 from
		// here on cannot lose it.
		if _, err := store.Insert(ctx, docs); err != nil {
			log.Fatal(err)
		}
		// Save checkpoints the store's own data directory explicitly:
		// every document is merged into the static structure and
		// snapshotted, and the journal is truncated, making the next Open
		// a pure snapshot load. (SaveTo exports to any other directory.)
		if err := store.Save(ctx); err != nil {
			log.Fatal(err)
		}
		fmt.Println("indexed, journaled, and checkpointed")
	}

	q, ok := enc.Encode("earthquake hits city on the coast")
	if !ok {
		log.Fatal("query has no known words")
	}
	res, err := store.Search(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range res.Matches {
		fmt.Printf("  %.3f rad  %q\n", m.Dist, corpus[m.ID])
	}
}
