// First-story detection: the Twitter use case the paper's §2 discusses
// (Petrović et al., NAACL 2010). A tweet is a "first story" if no earlier
// tweet is similar to it — i.e. its R-near-neighbor set in the index is
// empty. PLSH makes the per-tweet query cheap enough to run on the live
// stream; unlike the NAACL system's constant-size bins, PLSH gives a
// well-defined correctness guarantee per lookup.
package main

import (
	"context"
	"fmt"
	"log"

	"plsh"
)

func main() {
	ctx := context.Background()
	enc := plsh.NewEncoder(1 << 16)
	stream := []string{
		"massive power outage hits the northern grid tonight",
		"millions dark after massive power outage on northern grid",       // follow-up
		"northern grid failure causes massive power outage",               // follow-up
		"celebrity couple announces surprise wedding in vegas",            // new story
		"surprise vegas wedding for famous celebrity couple",              // follow-up
		"scientists report breakthrough in battery energy density",        // new story
		"volcano erupts on remote island chain",                           // new story
		"battery breakthrough could double energy density say scientists", // follow-up
	}
	// Prime document frequencies on the stream sample (a production system
	// would maintain rolling IDF statistics).
	for _, s := range stream {
		enc.Observe(s)
	}

	// M=16 gives L=120 tables: at tiny scale that drives the per-neighbor
	// retrieval probability past 97%, so follow-ups are reliably caught.
	store, err := plsh.NewStore(plsh.Config{
		Dim:      1 << 16,
		K:        8,
		M:        16,
		Radius:   1.15, // similarity threshold for "same story"
		Capacity: 10000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("first-story detection over the stream:")
	for _, text := range stream {
		v, ok := enc.Encode(text)
		if !ok {
			continue // 0-length tweet: ignore, as the paper does
		}
		// Search bounded to the single nearest match is exactly the
		// first-story question: is there any earlier tweet within the
		// radius, and which one is closest?
		res, err := store.Search(ctx, v, plsh.WithK(1))
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Matches) == 0 {
			fmt.Printf("  FIRST STORY: %q\n", text)
		} else {
			best := res.Matches[0]
			fmt.Printf("  follow-up (%.2f rad from doc %d): %q\n", best.Dist, best.ID, text)
		}
		if _, err := store.Insert(ctx, []plsh.Vector{v}); err != nil {
			log.Fatal(err)
		}
	}
	st := store.StatsNow()
	fmt.Printf("\nindexed %d tweets (%d static / %d delta)\n",
		st.StaticLen+st.DeltaLen, st.StaticLen, st.DeltaLen)
}
