// Multinode: an in-process PLSH cluster with the paper's rolling insert
// window (Fig. 1). Documents stream into M window nodes round-robin;
// queries broadcast to every node; when the window wraps, the nodes
// holding the oldest data are erased — giving the stream a well-defined
// expiration horizon. Swap NewCluster for DialCluster to coordinate real
// plsh-node servers over TCP.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"plsh"
)

const (
	numNodes    = 6
	windowM     = 2
	nodeCap     = 2000
	vocabSize   = 20000
	streamTotal = 14000 // > cluster capacity: forces expiration
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cluster, err := plsh.NewCluster(numNodes, windowM, plsh.Config{
		Dim:      vocabSize,
		K:        10,
		M:        8,
		Capacity: nodeCap,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	docs := plsh.SyntheticTweets(streamTotal, vocabSize, 11)
	ids, err := cluster.Insert(ctx, docs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d docs through %d nodes (capacity %d each, window %d)\n",
		len(ids), numNodes, nodeCap, windowM)

	stats, err := cluster.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for i, st := range stats {
		fmt.Printf("  node %d: %5d docs (%d static / %d delta, %d merges)\n",
			i, st.StaticLen+st.DeltaLen, st.StaticLen, st.DeltaLen, st.Merges)
		total += st.StaticLen + st.DeltaLen
	}
	fmt.Printf("cluster holds %d docs — the oldest %d expired with the rolling window\n",
		total, streamTotal-total)

	// The most recent documents are always findable... (Search matches
	// carry the same packed global IDs Insert returned, so membership is
	// a direct comparison.)
	recent := docs[streamTotal-1]
	res, err := cluster.Search(ctx, recent)
	if err != nil {
		log.Fatal(err)
	}
	foundRecent := false
	for _, m := range res.Matches {
		if m.ID == ids[streamTotal-1] {
			foundRecent = true
		}
	}
	// ...while the oldest have been expired.
	oldRes, err := cluster.Search(ctx, docs[0])
	if err != nil {
		log.Fatal(err)
	}
	foundOld := false
	for _, m := range oldRes.Matches {
		if m.ID == ids[0] {
			foundOld = true
		}
	}
	fmt.Printf("newest doc findable: %v; oldest doc expired: %v\n", foundRecent, !foundOld)

	// Top-K across the cluster: each node prunes to its k best and the
	// coordinator merges the bounded partial lists — no full concatenation.
	top, err := cluster.Search(ctx, recent, plsh.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3 nearest neighbors of the newest doc:")
	for _, m := range top.Matches {
		fmt.Printf("  node %d doc %d at %.3f rad\n", m.Node(), m.Local(), m.Dist)
	}
	// The cluster can also hand back any stored vector by global ID.
	if v, known, err := cluster.Doc(ctx, top.Matches[0].ID); err != nil {
		log.Fatal(err)
	} else if known {
		fmt.Printf("nearest neighbor has %d non-zero terms\n", v.NNZ())
	}

	// Production broadcasts can trade completeness for bounded latency:
	// each node gets a timeout and stragglers are reported, not fatal.
	// The same options scope radius and k per request — one cluster
	// serves heterogeneous traffic.
	_, report, err := cluster.SearchBatch(ctx, docs[:8],
		plsh.WithNodeTimeout(250*time.Millisecond), plsh.AllowPartial())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timed broadcast: complete=%v stragglers=%v\n",
		report.Complete(), report.Stragglers())
}
