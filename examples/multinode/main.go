// Multinode: an in-process PLSH cluster with the paper's rolling insert
// window (Fig. 1) plus R-way replication beyond it. Documents stream
// into M window groups round-robin, mirrored onto every member of each
// group; queries broadcast to every group — one member answers, with
// failover to its sibling on error and an optional latency hedge — and
// when the window wraps, the groups holding the oldest data are erased,
// giving the stream a well-defined expiration horizon. Swap NewCluster
// for DialCluster (with WithReplicas) to coordinate real plsh-node
// servers over TCP; there, a SIGKILLed replica costs no answers and
// rejoins after restarting from its journal.
//
// The second half opts a cluster into partitioned placement
// (Config.Placement): documents are placed by an LSH routing signature
// instead of round-robin, and each search probes only the groups that
// can hold its in-radius neighbors — the trace's RoutedGroups /
// PrunedGroups counters show the fan-out a broadcast would have paid.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"plsh"
)

const (
	numNodes    = 6 // endpoints: replicas×groups
	replicas    = 2 // → 3 groups of 2 mirrored members
	windowM     = 2 // insert window, in groups
	nodeCap     = 2000
	vocabSize   = 20000
	streamTotal = 14000 // > unique capacity (3×2000): forces expiration
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cluster, err := plsh.NewCluster(numNodes, windowM, plsh.Config{
		Dim:      vocabSize,
		K:        10,
		M:        8,
		Capacity: nodeCap,
		Replicas: replicas,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	docs := plsh.SyntheticTweets(streamTotal, vocabSize, 11)
	ids, err := cluster.Insert(ctx, docs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d docs through %d groups × %d replicas (capacity %d each, window %d)\n",
		len(ids), cluster.NumGroups(), cluster.Replicas(), nodeCap, windowM)

	stats, err := cluster.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for g := 0; g < cluster.NumGroups(); g++ {
		// Stats are per endpoint, group-major; mirrors hold identical
		// copies, so count each group once.
		st := stats[g*replicas]
		fmt.Printf("  group %d: %5d docs ×%d mirrors (%d static / %d delta, %d merges)\n",
			g, st.StaticLen+st.DeltaLen, replicas, st.StaticLen, st.DeltaLen, st.Merges)
		total += st.StaticLen + st.DeltaLen
	}
	fmt.Printf("cluster holds %d unique docs — the oldest %d expired with the rolling window\n",
		total, streamTotal-total)

	// The most recent documents are always findable... (Search matches
	// carry the same packed global IDs Insert returned, so membership is
	// a direct comparison.)
	recent := docs[streamTotal-1]
	res, err := cluster.Search(ctx, recent)
	if err != nil {
		log.Fatal(err)
	}
	foundRecent := false
	for _, m := range res.Matches {
		if m.ID == ids[streamTotal-1] {
			foundRecent = true
		}
	}
	// ...while the oldest have been expired.
	oldRes, err := cluster.Search(ctx, docs[0])
	if err != nil {
		log.Fatal(err)
	}
	foundOld := false
	for _, m := range oldRes.Matches {
		if m.ID == ids[0] {
			foundOld = true
		}
	}
	fmt.Printf("newest doc findable: %v; oldest doc expired: %v\n", foundRecent, !foundOld)

	// Top-K across the cluster: each group prunes to its k best and the
	// coordinator merges the bounded partial lists — no full concatenation.
	top, err := cluster.Search(ctx, recent, plsh.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3 nearest neighbors of the newest doc:")
	for _, m := range top.Matches {
		fmt.Printf("  group %d doc %d at %.3f rad\n", m.Node(), m.Local(), m.Dist)
	}
	// The cluster can also hand back any stored vector by global ID (any
	// live mirror serves it).
	if v, known, err := cluster.Doc(ctx, top.Matches[0].ID); err != nil {
		log.Fatal(err)
	} else if known {
		fmt.Printf("nearest neighbor has %d non-zero terms\n", v.NNZ())
	}

	// Production broadcasts trade completeness for bounded latency: each
	// replica attempt gets a timeout, a slow preferred replica is raced by
	// its sibling after the hedge delay, and anything unanswerable is
	// reported, not fatal. WithTrace opts into the per-attempt trace
	// (off by default — materializing it costs an allocation per group):
	// on a healthy in-process cluster expect zero failovers and zero
	// hedges won — over TCP with a killed node, failovers mask it and
	// Complete stays true.
	_, report, err := cluster.SearchBatch(ctx, docs[:8],
		plsh.WithNodeTimeout(250*time.Millisecond),
		plsh.WithHedge(100*time.Millisecond),
		plsh.AllowPartial(),
		plsh.WithTrace())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hedged broadcast: complete=%v stragglers=%v failovers=%d hedges-won=%d attempts=%d\n",
		report.Complete(), report.Stragglers(), report.Failovers(), report.HedgesWon(), len(report.Attempts))

	// Partitioned placement: the same corpus on an 8-group cluster that
	// routes instead of broadcasting. Inserts land on the group chosen by
	// each document's routing signature (so there is no rolling window —
	// capacity covers the whole stream here), and each query contacts
	// only the groups its in-radius neighbors could occupy, to the
	// RoutingRecall target. Under WithTrace the batch counts the (query,
	// group) pairs it contacted vs pruned; scatter would have contacted
	// all of them.
	routed, err := plsh.NewCluster(8, 0, plsh.Config{
		Dim:           vocabSize,
		K:             10,
		M:             8,
		Capacity:      streamTotal,
		Placement:     plsh.PlacementPartitioned,
		RoutingRecall: 0.7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer routed.Close()
	if _, err := routed.Insert(ctx, docs); err != nil {
		log.Fatal(err)
	}
	queries := docs[len(docs)-16:]
	_, rreport, err := routed.SearchBatch(ctx, queries, plsh.WithTrace())
	if err != nil {
		log.Fatal(err)
	}
	pairs := len(queries) * routed.NumGroups()
	fmt.Printf("routed search: contacted %d of %d (query, group) pairs, pruned %d (%.0f%% of the broadcast fan-out avoided)\n",
		rreport.RoutedGroups, pairs, rreport.PrunedGroups,
		100*float64(rreport.PrunedGroups)/float64(pairs))
}
