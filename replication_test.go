package plsh

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"sort"
	"testing"
	"time"

	"plsh/internal/core"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/transport"
)

// killableTCPNode is an in-process plsh node served over real TCP whose
// "process death" is simulated by tearing down its listener and every
// open connection; restart re-listens on the same address over the same
// backend (a real SIGKILL plus journal recovery is exercised by the slow
// fault-injection suite in faultinjection_slow_test.go).
type killableTCPNode struct {
	t    *testing.T
	addr string
	n    *node.Node
	stop context.CancelFunc
	done chan struct{}
}

func startKillableTCPNode(t *testing.T, capacity int) *killableTCPNode {
	t.Helper()
	nd, err := node.New(node.Config{
		Params:   lshhash.Params{Dim: 2000, K: 4, M: 16, Seed: 42},
		Capacity: capacity,
		Build:    core.Defaults(),
		Query:    core.QueryDefaults(),
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	k := &killableTCPNode{t: t, addr: l.Addr().String(), n: nd}
	k.serve(l)
	t.Cleanup(func() { k.stop() })
	return k
}

func (k *killableTCPNode) serve(l net.Listener) {
	ctx, cancel := context.WithCancel(context.Background())
	k.stop = cancel
	done := make(chan struct{})
	k.done = done
	go func() {
		defer close(done)
		transport.Serve(ctx, l, transport.NewLocal(k.n), nil)
	}()
}

func (k *killableTCPNode) kill() {
	k.stop()
	<-k.done
}

func (k *killableTCPNode) restart() {
	k.t.Helper()
	var l net.Listener
	var err error
	for deadline := time.Now().Add(5 * time.Second); ; {
		l, err = net.Listen("tcp", k.addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			k.t.Fatalf("re-listen on %s: %v", k.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	k.serve(l)
}

// TestReplicatedFailoverTCP is the fast (in-process servers, real TCP)
// version of the acceptance criterion: on a 6-node Replicas=2 cluster,
// killing any single node leaves every SearchBatch Complete with answers
// identical to the no-failure oracle; a killed node that comes back
// rejoins (the Redial transport re-dials it) and serves the group alone
// when its sibling dies next.
func TestReplicatedFailoverTCP(t *testing.T) {
	servers := make([]*killableTCPNode, 6)
	addrs := make([]string, 6)
	for i := range servers {
		servers[i] = startKillableTCPNode(t, 200)
		addrs[i] = servers[i].addr
	}
	cl, err := DialCluster(bg, addrs, 3, WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.NumNodes() != 6 || cl.NumGroups() != 3 || cl.Replicas() != 2 {
		t.Fatalf("cluster shape: nodes=%d groups=%d replicas=%d",
			cl.NumNodes(), cl.NumGroups(), cl.Replicas())
	}

	docs := SyntheticTweets(300, 2000, 63)
	ids, err := cl.Insert(bg, docs)
	if err != nil {
		t.Fatal(err)
	}
	queries := docs[:16]
	oracle, oracleReport, err := cl.SearchBatch(bg, queries)
	if err != nil || !oracleReport.Complete() {
		t.Fatalf("pre-kill oracle: err=%v complete=%v", err, oracleReport.Complete())
	}

	// Kill each node in turn; searches issued while it is down — including
	// ones racing the kill itself — must stay Complete and answer exactly
	// the oracle, masked by the sibling replica.
	for victim := range servers {
		type outcome struct {
			res    []Result
			report Report
			err    error
		}
		outcomes := make(chan outcome, 4)
		go func() {
			for j := 0; j < 4; j++ {
				res, report, err := cl.SearchBatch(bg, queries)
				outcomes <- outcome{res, report, err}
			}
		}()
		time.Sleep(2 * time.Millisecond)
		servers[victim].kill()
		for j := 0; j < 4; j++ {
			o := <-outcomes
			if o.err != nil {
				t.Fatalf("victim %d racing search %d failed: %v", victim, j, o.err)
			}
			if !o.report.Complete() {
				t.Fatalf("victim %d racing search %d: incomplete report, stragglers %v",
					victim, j, o.report.Stragglers())
			}
			if !reflect.DeepEqual(o.res, oracle) {
				t.Fatalf("victim %d racing search %d: answers diverge from the pre-kill oracle", victim, j)
			}
		}
		// Post-kill, the dead replica is certainly dead: keep searching
		// until the rotating preference routes its group to it and the
		// failover is recorded (a handful of searches in practice — the
		// winning member is asserted every time regardless).
		sawFailover := false
		for j := 0; j < 50 && !sawFailover; j++ {
			res, report, err := cl.SearchBatch(bg, queries, WithTrace())
			if err != nil {
				t.Fatalf("victim %d post-kill search %d failed: %v", victim, j, err)
			}
			if !report.Complete() {
				t.Fatalf("victim %d post-kill search %d: incomplete, stragglers %v",
					victim, j, report.Stragglers())
			}
			if !reflect.DeepEqual(res, oracle) {
				t.Fatalf("victim %d post-kill search %d: answers diverge from the oracle", victim, j)
			}
			for _, a := range report.Attempts {
				if a.Won && a.Node == victim {
					t.Fatalf("victim %d post-kill search %d: dead replica recorded as winner", victim, j)
				}
			}
			sawFailover = report.Failovers() > 0
		}
		if !sawFailover {
			t.Fatalf("victim %d: no failover recorded across 50 searches with a dead replica", victim)
		}
		servers[victim].restart()
	}

	// Rejoin: node 0 was killed and restarted above. Kill its sibling
	// (node 1) — group 0 is now served solely by the rejoined node 0, and
	// the answers must still be the oracle's.
	servers[1].kill()
	res, report, err := cl.SearchBatch(bg, queries)
	if err != nil || !report.Complete() {
		t.Fatalf("search with rejoined node serving alone: err=%v complete=%v", err, report.Complete())
	}
	if !reflect.DeepEqual(res, oracle) {
		t.Fatal("rejoined replica answers diverge from the oracle")
	}
	servers[1].restart()

	// Whole group down: kill both members of group 2 (nodes 4 and 5).
	// All-or-nothing fails; AllowPartial degrades to the documented
	// partial answer with the dead group named in the report.
	servers[4].kill()
	servers[5].kill()
	if _, _, err := cl.SearchBatch(bg, queries); err == nil {
		t.Fatal("all-or-nothing SearchBatch succeeded with a whole group dead")
	}
	pres, preport, err := cl.SearchBatch(bg, queries, AllowPartial())
	if err != nil {
		t.Fatalf("partial SearchBatch with a dead group: %v", err)
	}
	if s := preport.Stragglers(); len(s) != 1 || s[0] != 2 {
		t.Fatalf("stragglers = %v, want [2] (the dead group)", s)
	}
	// The partial answer is the oracle minus the dead group's documents.
	for qi := range queries {
		var want []Match
		for _, m := range oracle[qi].Matches {
			if m.Node() != 2 {
				want = append(want, m)
			}
		}
		if !reflect.DeepEqual(pres[qi].Matches, want) {
			t.Fatalf("query %d: partial answer is not oracle-minus-group-2", qi)
		}
	}

	// Deletes route to all mirrors; with one restarted earlier and all
	// live again, a delete stays deleted from every replica.
	servers[4].restart()
	servers[5].restart()
	waitHealthy := func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if _, _, err := cl.SearchBatch(bg, queries[:1]); err == nil {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("cluster never healed after restarts")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitHealthy()
	if err := cl.Delete(bg, ids[0]); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ { // rotation: both replicas serve
		got, err := cl.Search(bg, docs[0])
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range got.Matches {
			if m.ID == ids[0] {
				t.Fatalf("pass %d: deleted doc served by a mirror", pass)
			}
		}
	}
}

// TestWithHedgeTCP: a hedged search against a healthy TCP cluster is a
// clean no-op (no hedges needed, identical answers), pinning that the
// hedge path does not perturb results.
func TestWithHedgeTCP(t *testing.T) {
	servers := make([]*killableTCPNode, 4)
	addrs := make([]string, 4)
	for i := range servers {
		servers[i] = startKillableTCPNode(t, 200)
		addrs[i] = servers[i].addr
	}
	cl, err := DialCluster(bg, addrs, 2, WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	docs := SyntheticTweets(200, 2000, 65)
	if _, err := cl.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	plain, _, err := cl.SearchBatch(bg, docs[:8])
	if err != nil {
		t.Fatal(err)
	}
	hedged, report, err := cl.SearchBatch(bg, docs[:8], WithHedge(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, hedged) {
		t.Fatal("hedged search answers differ from plain search")
	}
	if !report.Complete() {
		t.Fatal("hedged search incomplete on a healthy cluster")
	}
}

// TestReplicatedClusterEquivalence is the seeded randomized property
// test: sweeping (radius, k, max-candidates, replicas ∈ {1,2,3}), Search
// on a replicated cluster must equal the single-copy cluster and the
// exhaustive-scan oracle. The whole suite runs under -race in CI, so the
// replicated fan-out is exercised for data races too. Replica placement
// moves documents between groups, so results are compared by document
// identity (via each cluster's own ID map) and by distance sequence, both
// of which are placement-invariant.
func TestReplicatedClusterEquivalence(t *testing.T) {
	docs := SyntheticTweets(240, 2000, 67)
	var queries []Vector
	for i := 0; i < len(docs); i += 29 {
		queries = append(queries, docs[i])
	}
	rng := rand.New(rand.NewSource(71))
	type trial struct {
		radius  float64
		k       int
		maxCand int // 0 = unbounded; len(docs) = roomy (provably a no-op)
	}
	trials := []trial{{0.9, 0, 0}} // the default shape, always covered
	for i := 0; i < 5; i++ {
		trials = append(trials, trial{
			radius:  0.8 + 0.4*rng.Float64(),
			k:       []int{0, 1, 5, 20}[rng.Intn(4)],
			maxCand: []int{0, len(docs)}[rng.Intn(2)],
		})
	}

	// signature flattens one cluster's answers placement-invariantly:
	// document positions (by that cluster's own IDs) for unbounded
	// searches, distance sequences when k bounds the answer (a distance
	// tie at the k boundary may legitimately pick a different — equally
	// near — document under a different placement).
	signature := func(res []Result, pos map[uint64]int, k int) [][]float64 {
		out := make([][]float64, len(res))
		for i, r := range res {
			for _, m := range r.Matches {
				if k > 0 {
					out[i] = append(out[i], m.Dist)
				} else {
					out[i] = append(out[i], float64(pos[m.ID]))
				}
			}
			if k == 0 {
				sort.Float64s(out[i])
			}
		}
		return out
	}

	var baseline [][][]float64 // per trial, from the replicas=1 cluster
	for _, replicas := range []int{1, 2, 3} {
		cl, err := OpenCluster(bg, 6, 0, Config{
			Dim: 2000, K: 4, M: 16, Radius: 0.9, Capacity: 200,
			Replicas: replicas, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids, err := cl.Insert(bg, docs)
		if err != nil {
			t.Fatal(err)
		}
		pos := make(map[uint64]int, len(ids))
		for i, id := range ids {
			pos[id] = i
		}
		for ti, tr := range trials {
			opts := []SearchOption{WithRadius(tr.radius)}
			if tr.k > 0 {
				opts = append(opts, WithK(tr.k))
			}
			if tr.maxCand > 0 {
				opts = append(opts, WithMaxCandidates(tr.maxCand))
			}
			res, report, err := cl.SearchBatch(bg, queries, opts...)
			if err != nil {
				t.Fatalf("replicas=%d trial %d: %v", replicas, ti, err)
			}
			if !report.Complete() {
				t.Fatalf("replicas=%d trial %d: incomplete on a healthy cluster", replicas, ti)
			}
			// ≡ exhaustive-scan oracle, in this cluster's own ID space.
			for qi, q := range queries {
				requireMatchesEqual(t, "replicated vs oracle", res[qi].Matches,
					oracleMatches(docs, ids, q, tr.radius, tr.k))
			}
			// ≡ the single-copy cluster, placement-invariantly.
			sig := signature(res, pos, tr.k)
			if replicas == 1 {
				baseline = append(baseline, sig)
			} else if !reflect.DeepEqual(sig, baseline[ti]) {
				t.Fatalf("replicas=%d trial %d (r=%.3f k=%d cand=%d): diverges from single-copy cluster",
					replicas, ti, tr.radius, tr.k, tr.maxCand)
			}
		}
		// A tight candidate budget cannot be placement-invariant (it is
		// per-node), but it must stay a subset of the unbounded answer.
		full, _, err := cl.SearchBatch(bg, queries)
		if err != nil {
			t.Fatal(err)
		}
		tight, _, err := cl.SearchBatch(bg, queries, WithMaxCandidates(3))
		if err != nil {
			t.Fatal(err)
		}
		for qi := range queries {
			in := map[uint64]bool{}
			for _, m := range full[qi].Matches {
				in[m.ID] = true
			}
			for _, m := range tight[qi].Matches {
				if !in[m.ID] {
					t.Fatalf("replicas=%d: budgeted search invented match %d", replicas, m.ID)
				}
			}
		}
		cl.Close()
	}
}

// TestPartitionedRoutingRecallSweep is the routed arm of the seeded
// randomized sweep: under partitioned placement, Search across random
// (radius, k, max-candidates) trials and replica counts must return only
// true in-radius neighbors (a subset of the exhaustive oracle, exact
// distances, canonical order) and find at least the configured
// RoutingRecall fraction of the oracle's matches in aggregate. The
// scatter arm's exact ≡ oracle equivalence is pinned separately by
// TestReplicatedClusterEquivalence — partitioned placement trades that
// exactness for pruned fan-out, and this sweep pins the bound it trades
// down to. Fully seeded, so realized recall is deterministic.
func TestPartitionedRoutingRecallSweep(t *testing.T) {
	const target = 0.8
	docs := SyntheticTweets(240, 2000, 67)
	var queries []Vector
	for i := 0; i < len(docs); i += 13 {
		queries = append(queries, docs[i])
	}
	rng := rand.New(rand.NewSource(73))
	type trial struct {
		radius  float64
		k       int
		maxCand int
	}
	trials := []trial{{0.9, 0, 0}}
	for i := 0; i < 5; i++ {
		trials = append(trials, trial{
			radius:  0.8 + 0.4*rng.Float64(),
			k:       []int{0, 1, 5, 20}[rng.Intn(4)],
			maxCand: []int{0, len(docs)}[rng.Intn(2)],
		})
	}
	for _, replicas := range []int{1, 2} {
		cl, err := OpenCluster(bg, 6, 0, Config{
			Dim: 2000, K: 4, M: 16, Radius: 0.9, Capacity: 200,
			Replicas: replicas, Seed: 42,
			Placement: PlacementPartitioned, RoutingRecall: target,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids, err := cl.Insert(bg, docs)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Merge(bg); err != nil {
			t.Fatal(err)
		}
		for ti, tr := range trials {
			opts := []SearchOption{WithRadius(tr.radius)}
			if tr.k > 0 {
				opts = append(opts, WithK(tr.k))
			}
			if tr.maxCand > 0 {
				opts = append(opts, WithMaxCandidates(tr.maxCand))
			}
			res, report, err := cl.SearchBatch(bg, queries, opts...)
			if err != nil {
				t.Fatalf("replicas=%d trial %d: %v", replicas, ti, err)
			}
			if !report.Complete() {
				t.Fatalf("replicas=%d trial %d: incomplete on a healthy cluster", replicas, ti)
			}
			found, oracleTotal := 0, 0
			for qi, q := range queries {
				oracle := oracleMatches(docs, ids, q, tr.radius, 0)
				dist := make(map[uint64]float64, len(oracle))
				for _, m := range oracle {
					dist[m.ID] = m.Dist
				}
				got := res[qi].Matches
				if tr.k > 0 && len(got) > tr.k {
					t.Fatalf("replicas=%d trial %d query %d: %d matches exceed k=%d",
						replicas, ti, qi, len(got), tr.k)
				}
				for mi, m := range got {
					want, ok := dist[m.ID]
					if !ok {
						t.Fatalf("replicas=%d trial %d query %d: match %d not in the radius oracle",
							replicas, ti, qi, m.ID)
					}
					if m.Dist != want {
						t.Fatalf("replicas=%d trial %d query %d: distance %v, oracle %v",
							replicas, ti, qi, m.Dist, want)
					}
					if mi > 0 && got[mi].Dist < got[mi-1].Dist {
						t.Fatalf("replicas=%d trial %d query %d: answers out of order", replicas, ti, qi)
					}
				}
				if tr.k == 0 {
					found += len(got)
					oracleTotal += len(oracle)
				}
			}
			if oracleTotal > 0 {
				if recall := float64(found) / float64(oracleTotal); recall < target {
					t.Fatalf("replicas=%d trial %d (r=%.3f): routed recall %.3f below target %.2f (%d/%d)",
						replicas, ti, tr.radius, recall, target, found, oracleTotal)
				}
			}
		}
		cl.Close()
	}
}

// TestPartitionedPruningAndTraceCounts pins the routed observability
// contract and the fan-out acceptance bound: RoutedGroups/PrunedGroups
// are recorded only under WithTrace (alongside the existing
// Attempts-only-under-WithTrace guarantee), they always sum to
// queries × groups, tracing does not perturb answers, scatter clusters
// report zeros — and on a 16-group fleet the router contacts at most
// half the (query, group) pairs a scatter broadcast would.
func TestPartitionedPruningAndTraceCounts(t *testing.T) {
	const groups = 16
	cl, err := OpenCluster(bg, groups, 0, Config{
		Dim: 2000, K: 4, M: 16, Radius: 0.9, Capacity: 400, Seed: 42,
		Placement: PlacementPartitioned, RoutingRecall: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	docs := SyntheticTweets(400, 2000, 67)
	if _, err := cl.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	if err := cl.Merge(bg); err != nil {
		t.Fatal(err)
	}
	var queries []Vector
	for i := 0; i < len(docs); i += 7 {
		queries = append(queries, docs[i])
	}

	plain, plainReport, err := cl.SearchBatch(bg, queries)
	if err != nil {
		t.Fatal(err)
	}
	if plainReport.RoutedGroups != 0 || plainReport.PrunedGroups != 0 {
		t.Fatalf("untraced routed search recorded counts: routed=%d pruned=%d",
			plainReport.RoutedGroups, plainReport.PrunedGroups)
	}
	if plainReport.Attempts != nil {
		t.Fatal("untraced routed search materialized Attempts")
	}

	traced, report, err := cl.SearchBatch(bg, queries, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traced, plain) {
		t.Fatal("tracing perturbed routed answers")
	}
	total := len(queries) * groups
	if report.RoutedGroups+report.PrunedGroups != total {
		t.Fatalf("routed %d + pruned %d ≠ %d query×group pairs",
			report.RoutedGroups, report.PrunedGroups, total)
	}
	if report.RoutedGroups < len(queries) {
		t.Fatalf("routed %d pairs < %d queries; every query probes at least one group",
			report.RoutedGroups, len(queries))
	}
	// The acceptance bound: on ≥ 8 groups, partitioned search contacts at
	// most half the (query, group) pairs scatter would broadcast to.
	if report.RoutedGroups > total/2 {
		t.Fatalf("routed %d of %d pairs: partitioned search contacted more than half the groups",
			report.RoutedGroups, total)
	}
	// Every Attempt must belong to a routed-to group: pruned groups see no
	// RPC at all.
	for _, a := range report.Attempts {
		if a.Group < 0 || a.Group >= groups {
			t.Fatalf("attempt names group %d of %d", a.Group, groups)
		}
	}

	// Scatter placement never records routing counts, traced or not.
	sc, err := NewCluster(4, 0, Config{Dim: 2000, K: 4, M: 16, Capacity: 400, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.Insert(bg, docs[:100]); err != nil {
		t.Fatal(err)
	}
	_, sreport, err := sc.SearchBatch(bg, queries[:4], WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if sreport.RoutedGroups != 0 || sreport.PrunedGroups != 0 {
		t.Fatalf("scatter cluster recorded routing counts: routed=%d pruned=%d",
			sreport.RoutedGroups, sreport.PrunedGroups)
	}
}

// TestPartitionedFailoverTCP is the fast routed-failover check: with
// replicas mirrored inside each routed-to group, killing one member of a
// group the router probes leaves routed searches Complete and identical
// — the failover/hedge machinery runs within the routed set. Killing the
// whole group fails all-or-nothing and degrades AllowPartial to the
// routed answer minus that group, naming it — same contract as scatter
// (the real-process SIGKILL version lives in the slow clustertest suite).
func TestPartitionedFailoverTCP(t *testing.T) {
	servers := make([]*killableTCPNode, 8)
	addrs := make([]string, 8)
	for i := range servers {
		servers[i] = startKillableTCPNode(t, 400)
		addrs[i] = servers[i].addr
	}
	cl, err := DialCluster(bg, addrs, 0, WithReplicas(2),
		WithPartitioned(Config{Dim: 2000, K: 4, M: 16, Seed: 42, RoutingRecall: 0.7}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.NumGroups() != 4 || cl.Replicas() != 2 {
		t.Fatalf("cluster shape: groups=%d replicas=%d", cl.NumGroups(), cl.Replicas())
	}
	docs := SyntheticTweets(300, 2000, 63)
	queries := docs[:16]
	if _, err := cl.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	oracle, report, err := cl.SearchBatch(bg, queries, WithTrace())
	if err != nil || !report.Complete() {
		t.Fatalf("pre-kill routed baseline: err=%v complete=%v", err, report.Complete())
	}
	if report.RoutedGroups == 0 {
		t.Fatal("routing never engaged; the trace recorded no probes")
	}
	// Pick a group the batch certainly probes (routing is deterministic,
	// so every rerun of this batch probes it again) and kill the member
	// that just answered for it — the replica the preference currently
	// favors, so the very next routed search must fail over past it.
	victim, dead := -1, -1
	for _, a := range report.Attempts {
		if a.Won {
			victim, dead = a.Group, a.Node
			break
		}
	}
	if victim < 0 {
		t.Fatal("trace recorded no winning attempt")
	}
	servers[dead].kill()
	sawFailover := false
	for j := 0; j < 50 && !sawFailover; j++ {
		res, rep, err := cl.SearchBatch(bg, queries, WithTrace())
		if err != nil {
			t.Fatalf("routed search %d with a dead member: %v", j, err)
		}
		if !rep.Complete() {
			t.Fatalf("routed search %d: incomplete, stragglers %v", j, rep.Stragglers())
		}
		if !reflect.DeepEqual(res, oracle) {
			t.Fatalf("routed search %d: answers diverge from the pre-kill baseline", j)
		}
		for _, a := range rep.Attempts {
			if a.Won && a.Node == dead {
				t.Fatalf("routed search %d: dead member recorded as winner", j)
			}
		}
		sawFailover = rep.Failovers() > 0
	}
	if !sawFailover {
		t.Fatal("no failover recorded across 50 routed searches with a dead member")
	}
	// Whole routed-to group down: all-or-nothing fails, AllowPartial
	// answers the baseline minus the dead group and names it — exactly
	// the scatter contract. With contiguous pairs the sibling is dead^1.
	servers[dead^1].kill()
	if _, _, err := cl.SearchBatch(bg, queries); err == nil {
		t.Fatal("all-or-nothing routed SearchBatch succeeded with a whole routed-to group dead")
	}
	pres, preport, err := cl.SearchBatch(bg, queries, AllowPartial())
	if err != nil {
		t.Fatalf("partial routed SearchBatch with a dead group: %v", err)
	}
	if s := preport.Stragglers(); len(s) != 1 || s[0] != victim {
		t.Fatalf("stragglers = %v, want [%d] (the dead routed-to group)", s, victim)
	}
	for qi := range queries {
		var want []Match
		for _, m := range oracle[qi].Matches {
			if m.Node() != victim {
				want = append(want, m)
			}
		}
		if !reflect.DeepEqual(pres[qi].Matches, want) {
			t.Fatalf("query %d: partial routed answer is not baseline-minus-group-%d", qi, victim)
		}
	}
}

// TestReplicasConfigValidation: bad replica shapes fail construction
// loudly instead of mis-grouping endpoints.
func TestReplicasConfigValidation(t *testing.T) {
	if _, err := NewCluster(5, 2, Config{Dim: 2000, Replicas: 2}); err == nil {
		t.Fatal("5 nodes accepted for groups of 2")
	}
	if _, err := NewCluster(4, 2, Config{Dim: 2000, Replicas: -1}); err == nil {
		t.Fatal("negative Replicas accepted")
	}
	if _, err := DialCluster(bg, []string{"127.0.0.1:1"}, 1, WithReplicas(0)); err == nil {
		t.Fatal("WithReplicas(0) accepted")
	}
}

// TestInsertErrorSurfacesThroughPublicAPI: the mid-batch insert contract
// crosses the public wrapper intact.
func TestInsertErrorSurfacesThroughPublicAPI(t *testing.T) {
	servers := make([]*killableTCPNode, 2)
	addrs := make([]string, 2)
	for i := range servers {
		servers[i] = startKillableTCPNode(t, 1000)
		addrs[i] = servers[i].addr
	}
	cl, err := DialCluster(bg, addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	servers[1].kill()
	docs := SyntheticTweets(100, 2000, 69)
	_, err = cl.Insert(bg, docs)
	if err == nil {
		t.Fatal("insert succeeded with a dead window node")
	}
	var ie *InsertError
	if !errors.As(err, &ie) {
		t.Fatalf("public insert error is not an *InsertError: %v", err)
	}
	placed := 0
	for i, p := range ie.Placed {
		if p {
			placed++
			if g, _ := SplitGlobalID(ie.IDs[i]); g != 0 {
				t.Fatalf("doc %d reported placed on dead group %d", i, g)
			}
		}
	}
	if placed == 0 || placed == len(docs) {
		t.Fatalf("placed = %d of %d, want a strict mid-batch prefix", placed, len(docs))
	}
}
